package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gnnvault/internal/mat"
)

func TestSilhouettePerfectClusters(t *testing.T) {
	// Two tight, far-apart clusters → silhouette near 1.
	x := mat.FromRows([][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1},
	})
	labels := []int{0, 0, 0, 1, 1, 1}
	if s := Silhouette(x, labels); s < 0.95 {
		t.Fatalf("silhouette = %v, want ≈ 1", s)
	}
}

func TestSilhouetteRandomLabelsNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := mat.RandNormal(rng, 120, 4, 0, 1)
	labels := make([]int, 120)
	for i := range labels {
		labels[i] = rng.Intn(3)
	}
	if s := Silhouette(x, labels); math.Abs(s) > 0.1 {
		t.Fatalf("silhouette on random labels = %v, want ≈ 0", s)
	}
}

func TestSilhouetteSwappedClustersNegative(t *testing.T) {
	// Deliberately wrong labels → negative score.
	x := mat.FromRows([][]float64{
		{0, 0}, {0.1, 0}, {10, 10}, {10.1, 10},
	})
	labels := []int{0, 1, 0, 1}
	if s := Silhouette(x, labels); s >= 0 {
		t.Fatalf("silhouette with crossed labels = %v, want < 0", s)
	}
}

func TestSilhouetteSingleClass(t *testing.T) {
	x := mat.FromRows([][]float64{{1}, {2}, {3}})
	if s := Silhouette(x, []int{0, 0, 0}); s != 0 {
		t.Fatalf("single class silhouette = %v, want 0", s)
	}
}

func TestSilhouetteEmpty(t *testing.T) {
	if s := Silhouette(mat.New(0, 3), nil); s != 0 {
		t.Fatalf("empty silhouette = %v", s)
	}
}

func TestSilhouetteSingletonCluster(t *testing.T) {
	x := mat.FromRows([][]float64{{0}, {0.1}, {5}})
	// Must not panic or NaN; singleton contributes 0.
	s := Silhouette(x, []int{0, 0, 1})
	if math.IsNaN(s) {
		t.Fatal("NaN silhouette with singleton cluster")
	}
}

func TestSilhouettePanics(t *testing.T) {
	cases := map[string]func(){
		"len mismatch":   func() { Silhouette(mat.New(2, 2), []int{0}) },
		"negative label": func() { Silhouette(mat.New(2, 2), []int{0, -1}) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestROCAUCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	pos := []bool{true, true, false, false}
	if auc := ROCAUC(scores, pos); auc != 1 {
		t.Fatalf("AUC = %v, want 1", auc)
	}
}

func TestROCAUCInverted(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	pos := []bool{true, true, false, false}
	if auc := ROCAUC(scores, pos); auc != 0 {
		t.Fatalf("AUC = %v, want 0", auc)
	}
}

func TestROCAUCAllTied(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	pos := []bool{true, false, true, false}
	if auc := ROCAUC(scores, pos); auc != 0.5 {
		t.Fatalf("AUC with ties = %v, want 0.5", auc)
	}
}

func TestROCAUCDegenerateClasses(t *testing.T) {
	if auc := ROCAUC([]float64{1, 2}, []bool{true, true}); auc != 0.5 {
		t.Fatalf("single-class AUC = %v, want 0.5", auc)
	}
}

func TestROCAUCKnownValue(t *testing.T) {
	// Hand-computed: pos ranks {4, 2}, U = 6 - 3 = 3, AUC = 3/4.
	scores := []float64{0.9, 0.3, 0.5, 0.1}
	pos := []bool{true, true, false, false}
	if auc := ROCAUC(scores, pos); math.Abs(auc-0.75) > 1e-12 {
		t.Fatalf("AUC = %v, want 0.75", auc)
	}
}

func TestROCAUCMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	ROCAUC([]float64{1}, []bool{true, false})
}

func TestPropROCAUCComplement(t *testing.T) {
	// Negating scores flips AUC to 1-AUC.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		scores := make([]float64, n)
		pos := make([]bool, n)
		hasPos, hasNeg := false, false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			pos[i] = rng.Intn(2) == 0
			if pos[i] {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		neg := make([]float64, n)
		for i, s := range scores {
			neg[i] = -s
		}
		return math.Abs(ROCAUC(scores, pos)+ROCAUC(neg, pos)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropROCAUCRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		scores := make([]float64, n)
		pos := make([]bool, n)
		for i := range scores {
			scores[i] = rng.Float64()
			pos[i] = rng.Intn(2) == 0
		}
		auc := ROCAUC(scores, pos)
		return auc >= -1e-12 && auc <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm := ConfusionMatrix([]int{0, 1, 1, 0}, []int{0, 1, 0, 0}, 2)
	if cm[0][0] != 2 || cm[0][1] != 1 || cm[1][1] != 1 || cm[1][0] != 0 {
		t.Fatalf("confusion = %v", cm)
	}
}

func TestMacroF1Perfect(t *testing.T) {
	pred := []int{0, 1, 2, 0, 1, 2}
	if f1 := MacroF1(pred, pred, 3); math.Abs(f1-1) > 1e-12 {
		t.Fatalf("perfect F1 = %v", f1)
	}
}

func TestMacroF1Zero(t *testing.T) {
	pred := []int{1, 1}
	labels := []int{0, 0}
	if f1 := MacroF1(pred, labels, 2); f1 != 0 {
		t.Fatalf("all-wrong F1 = %v", f1)
	}
}

func TestTSNESeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 60
	x := mat.New(n, 5)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		labels[i] = c
		row := x.Row(i)
		for j := range row {
			row[j] = 0.2 * rng.NormFloat64()
		}
		row[c] += 4
	}
	y := TSNE(x, TSNEConfig{Perplexity: 10, Iterations: 250, Seed: 2})
	if y.Rows != n || y.Cols != 2 {
		t.Fatalf("TSNE output shape %s", y.Shape())
	}
	// The 2-D embedding should preserve the clustering: silhouette in the
	// embedding must be clearly positive.
	if s := Silhouette(y, labels); s < 0.3 {
		t.Fatalf("t-SNE silhouette = %v, want > 0.3", s)
	}
}

func TestTSNEEmptyInput(t *testing.T) {
	y := TSNE(mat.New(0, 3), TSNEConfig{})
	if y.Rows != 0 || y.Cols != 2 {
		t.Fatalf("empty TSNE shape = %s", y.Shape())
	}
}

func TestTSNEDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := mat.RandNormal(rng, 20, 4, 0, 1)
	cfg := TSNEConfig{Perplexity: 5, Iterations: 50, Seed: 7}
	if !TSNE(x, cfg).Equal(TSNE(x, cfg)) {
		t.Fatal("TSNE not deterministic for fixed seed")
	}
}

func TestTSNEOutputCentred(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := mat.RandNormal(rng, 30, 3, 5, 1)
	y := TSNE(x, TSNEConfig{Perplexity: 8, Iterations: 60, Seed: 1})
	cs := y.ColSums()
	if math.Abs(cs[0]) > 1e-6 || math.Abs(cs[1]) > 1e-6 {
		t.Fatalf("embedding not centred: %v", cs)
	}
}

func TestTSNEToCSV(t *testing.T) {
	y := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	csv := TSNEToCSV(y, []int{0, 1})
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 || lines[0] != "x,y,label" {
		t.Fatalf("csv = %q", csv)
	}
	if !strings.HasPrefix(lines[1], "1.0000,2.0000,0") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestTSNEToCSVPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong shape did not panic")
		}
	}()
	TSNEToCSV(mat.New(2, 3), []int{0, 1})
}
