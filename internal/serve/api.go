package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/enclave"
	"gnnvault/internal/mat"
	"gnnvault/internal/obs"
	"gnnvault/internal/registry"
	"gnnvault/internal/subgraph"
)

// errEmptyNodes rejects node-level queries with no seeds at the API
// surface (the in-process PredictNodes treats them as free no-ops, but a
// client sending one is malformed).
var errEmptyNodes = errors.New("serve: predict_nodes needs a non-empty \"nodes\" list")

// APIVault describes one fleet member in the API catalog. JSON tags match
// the wire format the gnnvault CLI has always served.
type APIVault struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	Design  string `json:"design"`
	Nodes   int    `json:"nodes"`
	Params  int    `json:"rectifier_params"`
}

// APIConfig wires an API front-end over a MultiServer fleet.
type APIConfig struct {
	// Vaults is the fleet catalog; requests for IDs outside it fail with
	// registry.ErrUnknownVault.
	Vaults []APIVault
	// Features resolves a vault ID to its deployed public feature matrix
	// (the full-graph query input). Required.
	Features func(vaultID string) *mat.Matrix
	// NodeQueries reports whether the fleet serves the sampled-subgraph
	// node-query path; when false, PredictNodes fails with
	// registry.ErrNodeQueriesDisabled.
	NodeQueries bool
	// Limit, when non-nil, applies a per-client token-bucket/budget rate
	// limit. Cost is counted in answered labels, so a full-graph query
	// costs the graph size and a node query its seed count — the limiter
	// prices exactly what an extraction adversary consumes.
	Limit *RateLimit
	// Precision labels every request metric with the fleet's serving
	// precision tier ("fp64", "fp32", "int8"). Empty defaults to "fp64".
	Precision string
	// Trace, when non-nil, is the flight recorder's span ring; it opens
	// the GET /debug/trace endpoint. The same ring should be wired into
	// the registry (and through it every plan) so query span trees are
	// complete.
	Trace *obs.Ring
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/. Off by
	// default: profiling endpoints on a privacy-focused serving surface
	// are opt-in.
	EnablePprof bool
}

// API is the serving surface shared by every front-end: the HTTP/JSON
// handlers and in-process clients (the privacy harness) call the same
// methods, so an attack driven through either sees byte-identical
// behavior. Client identity exists only at this layer — the worker pool
// below it has no notion of who is asking — which is why the rate limiter
// lives here.
type API struct {
	srv       *MultiServer
	shard     *ShardedServer // non-nil routes the serving surface to a shard fleet
	reg       *registry.Registry
	cfg       APIConfig
	lim       *limiter
	byID      map[string]*APIVault
	vm        map[string]*vaultMetrics // per-vault endpoint metrics; read-only after NewAPI
	precision string
}

// NewAPI builds the shared serving surface over a running MultiServer and
// its registry.
func NewAPI(srv *MultiServer, reg *registry.Registry, cfg APIConfig) *API {
	a := &API{
		srv:       srv,
		reg:       reg,
		cfg:       cfg,
		byID:      make(map[string]*APIVault, len(cfg.Vaults)),
		vm:        make(map[string]*vaultMetrics, len(cfg.Vaults)),
		precision: cfg.Precision,
	}
	if a.precision == "" {
		a.precision = "fp64"
	}
	for i := range cfg.Vaults {
		a.byID[cfg.Vaults[i].ID] = &cfg.Vaults[i]
		a.vm[cfg.Vaults[i].ID] = &vaultMetrics{}
	}
	if cfg.Limit != nil {
		a.lim = newLimiter(*cfg.Limit)
	}
	return a
}

// NewShardedAPI builds the same serving surface over a shard fleet: every
// endpoint, defense and metric behaves as under NewAPI, except that the
// one catalogued vault is served by the ShardedServer's fan-out router
// instead of a registry checkout, /metrics grows the per-shard families
// (halo bytes, per-shard EPC, fan-out latency), and the score surface is
// closed — sharded serving is label-only. There is no registry: residency
// is static (every shard holds its slab for the deployment's lifetime),
// so the scheduler metric families are not emitted.
func NewShardedAPI(srv *ShardedServer, cfg APIConfig) *API {
	a := NewAPI(nil, nil, cfg)
	a.shard = srv
	return a
}

// The serve* helpers dispatch one pool call to whichever back-end this API
// fronts: the multi-vault registry pool or the shard fleet. The sharded
// path ignores the vault ID — lookup already pinned it to the catalog —
// and refuses score queries (label-only fleet).

func (a *API) servePredict(vault string, x *mat.Matrix) ([]int, error) {
	if a.shard != nil {
		return a.shard.Predict(x)
	}
	return a.srv.Predict(vault, x)
}

func (a *API) servePredictScores(vault string, x *mat.Matrix) ([][]float64, []int, error) {
	if a.shard != nil {
		return a.shard.PredictScores(x)
	}
	return a.srv.PredictScores(vault, x)
}

func (a *API) servePredictNodes(vault string, nodes []int) ([]int, error) {
	if a.shard != nil {
		return a.shard.PredictNodes(nodes)
	}
	return a.srv.PredictNodes(vault, nodes)
}

func (a *API) servePredictNodesScores(vault string, nodes []int) ([][]float64, []int, error) {
	if a.shard != nil {
		return a.shard.PredictNodesScores(nodes)
	}
	return a.srv.PredictNodesScores(vault, nodes)
}

// serveStats snapshots whichever worker pool this API fronts.
func (a *API) serveStats() Stats {
	if a.shard != nil {
		return a.shard.Stats()
	}
	return a.srv.Stats()
}

// lookup resolves a vault ID and validates the requested node indices.
func (a *API) lookup(vault string, nodes []int) (*APIVault, error) {
	info := a.byID[vault]
	if info == nil {
		return nil, fmt.Errorf("%w: %q", registry.ErrUnknownVault, vault)
	}
	for _, n := range nodes {
		if n < 0 || n >= info.Nodes {
			return nil, fmt.Errorf("%w: node %d outside [0,%d)", core.ErrNodeOutOfRange, n, info.Nodes)
		}
	}
	return info, nil
}

// allow charges the client for cost answered labels against the
// configured rate limit, if any.
func (a *API) allow(client string, cost int) error {
	if a.lim == nil {
		return nil
	}
	return a.lim.allow(client, cost)
}

// Predict answers a full-graph label query: the exact pass over the
// vault's deployed features, with nodes selecting which labels to return
// (empty means all). The client is charged one answered label per
// returned entry.
func (a *API) Predict(client, vault string, nodes []int) ([]int, error) {
	start := time.Now()
	labels, err := a.predict(client, vault, nodes)
	a.observeReq(vault, epPredict, start, err)
	return labels, err
}

func (a *API) predict(client, vault string, nodes []int) ([]int, error) {
	info, err := a.lookup(vault, nodes)
	if err != nil {
		return nil, err
	}
	cost := len(nodes)
	if cost == 0 {
		cost = info.Nodes
	}
	if err := a.allow(client, cost); err != nil {
		return nil, err
	}
	labels, err := a.servePredict(vault, a.cfg.Features(vault))
	if err != nil {
		return nil, err
	}
	return pickInts(labels, nodes), nil
}

// PredictScores is Predict over the defended score surface: one posterior
// row and label per selected node. Fails with ErrScoresDisabled unless
// the fleet exposes scores.
func (a *API) PredictScores(client, vault string, nodes []int) ([][]float64, []int, error) {
	start := time.Now()
	scores, labels, err := a.predictScores(client, vault, nodes)
	a.observeReq(vault, epPredict, start, err)
	return scores, labels, err
}

func (a *API) predictScores(client, vault string, nodes []int) ([][]float64, []int, error) {
	info, err := a.lookup(vault, nodes)
	if err != nil {
		return nil, nil, err
	}
	cost := len(nodes)
	if cost == 0 {
		cost = info.Nodes
	}
	if err := a.allow(client, cost); err != nil {
		return nil, nil, err
	}
	scores, labels, err := a.servePredictScores(vault, a.cfg.Features(vault))
	if err != nil {
		return nil, nil, err
	}
	return pickRows(scores, nodes), pickInts(labels, nodes), nil
}

// PredictNodes answers a node-level label query through the sampled
// subgraph path: per-query cost O(hops × fanout) instead of O(graph).
func (a *API) PredictNodes(client, vault string, nodes []int) ([]int, error) {
	start := time.Now()
	labels, err := a.predictNodes(client, vault, nodes)
	a.observeReq(vault, epPredictNodes, start, err)
	return labels, err
}

func (a *API) predictNodes(client, vault string, nodes []int) ([]int, error) {
	if _, err := a.lookup(vault, nodes); err != nil {
		return nil, err
	}
	if !a.cfg.NodeQueries {
		return nil, registry.ErrNodeQueriesDisabled
	}
	if len(nodes) == 0 {
		return nil, errEmptyNodes
	}
	if err := a.allow(client, len(nodes)); err != nil {
		return nil, err
	}
	return a.servePredictNodes(vault, nodes)
}

// PredictNodesScores is PredictNodes over the defended score surface.
func (a *API) PredictNodesScores(client, vault string, nodes []int) ([][]float64, []int, error) {
	start := time.Now()
	scores, labels, err := a.predictNodesScores(client, vault, nodes)
	a.observeReq(vault, epPredictNodes, start, err)
	return scores, labels, err
}

func (a *API) predictNodesScores(client, vault string, nodes []int) ([][]float64, []int, error) {
	if _, err := a.lookup(vault, nodes); err != nil {
		return nil, nil, err
	}
	if !a.cfg.NodeQueries {
		return nil, nil, registry.ErrNodeQueriesDisabled
	}
	if len(nodes) == 0 {
		return nil, nil, errEmptyNodes
	}
	if err := a.allow(client, len(nodes)); err != nil {
		return nil, nil, err
	}
	return a.servePredictNodesScores(vault, nodes)
}

// pickInts gathers the selected entries of all, or returns all when no
// selection was made.
func pickInts(all, nodes []int) []int {
	if len(nodes) == 0 {
		return all
	}
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = all[n]
	}
	return out
}

// pickRows gathers the selected rows of all, or returns all when no
// selection was made.
func pickRows(all [][]float64, nodes []int) [][]float64 {
	if len(nodes) == 0 {
		return all
	}
	out := make([][]float64, len(nodes))
	for i, n := range nodes {
		out[i] = all[n]
	}
	return out
}

// --- HTTP front-end -------------------------------------------------------

// apiRequest is the POST /predict and /predict_nodes payload.
type apiRequest struct {
	// Vault is the fleet member to query, "dataset/design".
	Vault string `json:"vault"`
	// Nodes are the node indices whose answers to return; empty means all
	// for /predict and is rejected for /predict_nodes.
	Nodes []int `json:"nodes"`
	// Scores asks for the defended per-class posterior rows alongside
	// labels. Requires the fleet to expose scores.
	Scores bool `json:"scores"`
}

// apiResponse is the answer to both predict endpoints.
type apiResponse struct {
	Vault     string      `json:"vault"`
	Nodes     []int       `json:"nodes,omitempty"`
	Labels    []int       `json:"labels"`
	Scores    [][]float64 `json:"scores,omitempty"`
	LatencyMS float64     `json:"latency_ms"`
}

// Handler returns the HTTP/JSON front-end over the API:
//
//	POST /predict        {"vault":"cora/parallel","nodes":[0,1],"scores":false} → labels (exact, full-graph)
//	POST /predict_nodes  {"vault":"cora/parallel","nodes":[0,1],"scores":false} → labels (sampled subgraph)
//	GET  /vaults                                                               → fleet catalog
//	GET  /stats                                                                → serving + scheduler + EPC counters
//	GET  /metrics                                                              → Prometheus text exposition
//	GET  /debug/trace?n=K                                                      → last K flight-recorder spans as trees
//	GET  /debug/pprof/                                                         → net/http/pprof (when EnablePprof)
//
// Client identity for rate limiting is the X-Client header when present,
// else the remote address. Throttled clients get 429, score queries
// against a label-only fleet 403, unknown vaults 404, malformed or
// out-of-range queries 400, node queries on a full-graph-only fleet 501.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		a.handlePredict(w, r, a.Predict, a.PredictScores)
	})
	mux.HandleFunc("POST /predict_nodes", func(w http.ResponseWriter, r *http.Request) {
		a.handlePredict(w, r, a.PredictNodes, a.PredictNodesScores)
	})
	mux.HandleFunc("GET /vaults", a.handleVaults)
	mux.HandleFunc("GET /stats", a.handleStats)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	mux.HandleFunc("GET /healthz", a.handleHealthz)
	mux.HandleFunc("GET /readyz", a.handleReadyz)
	mux.HandleFunc("GET /debug/trace", a.handleTrace)
	if a.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// clientID identifies the caller for rate limiting.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	return r.RemoteAddr
}

// handlePredict decodes one predict request and dispatches it to the
// label or score variant of the given endpoint.
func (a *API) handlePredict(w http.ResponseWriter, r *http.Request,
	labelsOf func(client, vault string, nodes []int) ([]int, error),
	scoresOf func(client, vault string, nodes []int) ([][]float64, []int, error),
) {
	var req apiRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	client := clientID(r)
	start := time.Now()
	resp := apiResponse{Vault: req.Vault, Nodes: req.Nodes}
	var err error
	if req.Scores {
		resp.Scores, resp.Labels, err = scoresOf(client, req.Vault, req.Nodes)
	} else {
		resp.Labels, err = labelsOf(client, req.Vault, req.Nodes)
	}
	if err != nil {
		httpError(w, httpStatus(err), err)
		return
	}
	resp.LatencyMS = float64(time.Since(start).Microseconds()) / 1e3
	writeJSON(w, http.StatusOK, resp)
}

func (a *API) handleVaults(w http.ResponseWriter, r *http.Request) {
	type vaultEntry struct {
		APIVault
		Resident   bool   `json:"resident"`
		Workspaces int    `json:"workspaces"`
		Requests   uint64 `json:"requests"`
		Plans      uint64 `json:"plans"`
		Evictions  uint64 `json:"evictions"`
	}
	byID := map[string]registry.VaultStats{}
	if a.reg != nil {
		rst := a.reg.Stats()
		for _, vs := range rst.PerVault {
			byID[vs.ID] = vs
		}
	}
	out := make([]vaultEntry, 0, len(a.cfg.Vaults))
	for _, info := range a.cfg.Vaults {
		vs := byID[info.ID]
		if a.reg == nil {
			// Shard fleet: no scheduler, residency is static for the
			// deployment's lifetime.
			vs.Resident = true
		}
		out = append(out, vaultEntry{
			APIVault:   info,
			Resident:   vs.Resident,
			Workspaces: vs.Workspaces,
			Requests:   vs.Requests,
			Plans:      vs.Plans,
			Evictions:  vs.Evictions,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"vaults": out})
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	st := a.serveStats()
	resp := map[string]any{
		"serving": map[string]any{
			"requests":       st.Requests,
			"completed":      st.Completed,
			"errors":         st.Errors,
			"batches":        st.Batches,
			"avg_batch":      st.AvgBatch,
			"avg_latency_ms": float64(st.AvgLatency.Microseconds()) / 1e3,
			"max_latency_ms": float64(st.MaxLatency.Microseconds()) / 1e3,
			"p50_latency_ms": float64(st.P50Latency.Microseconds()) / 1e3,
			"p95_latency_ms": float64(st.P95Latency.Microseconds()) / 1e3,
			"p99_latency_ms": float64(st.P99Latency.Microseconds()) / 1e3,
			"spill_bytes":    st.SpillBytes,
			"throughput_rps": st.Throughput,
			"uptime_s":       st.Uptime.Seconds(),
		},
	}
	if a.reg != nil {
		rst := a.reg.Stats()
		resp["scheduler"] = map[string]any{
			"vaults":    rst.Vaults,
			"resident":  rst.Resident,
			"requests":  rst.Requests,
			"plans":     rst.Plans,
			"evictions": rst.Evictions,
		}
		resp["enclave"] = map[string]any{
			"epc_used_bytes":  rst.EPCUsed,
			"epc_free_bytes":  rst.EPCFree,
			"epc_limit_bytes": rst.EPCLimit,
			"epc_used_mb":     float64(rst.EPCUsed) / (1 << 20),
			"epc_limit_mb":    float64(rst.EPCLimit) / (1 << 20),
		}
	}
	if a.shard != nil {
		sst := a.shard.ShardStats()
		var used, free, limit, halo int64
		for i := 0; i < sst.Shards; i++ {
			used += sst.EPCUsed[i]
			free += sst.EPCFree[i]
			limit += sst.EPCLimit[i]
			halo += sst.HaloBytes[i]
		}
		resp["enclave"] = map[string]any{
			"epc_used_bytes":  used,
			"epc_free_bytes":  free,
			"epc_limit_bytes": limit,
			"epc_used_mb":     float64(used) / (1 << 20),
			"epc_limit_mb":    float64(limit) / (1 << 20),
		}
		resp["shards"] = map[string]any{
			"shards":               sst.Shards,
			"available":            sst.Available,
			"halo_bytes":           sst.HaloBytes,
			"halo_bytes_total":     halo,
			"epc_used_bytes":       sst.EPCUsed,
			"epc_limit_bytes":      sst.EPCLimit,
			"fanout_p50_ms":        float64(sst.Fanout.Quantile(0.50)) / 1e6,
			"fanout_p99_ms":        float64(sst.Fanout.Quantile(0.99)) / 1e6,
			"ocalls_total":         sst.Ledger.OCalls,
			"ecall_bytes_in_total": sst.Ledger.BytesIn,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is the liveness probe: the process is up and the serving
// surface answers. It stays 200 through shard outages — degraded is not
// dead; that distinction belongs to /readyz.
func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe. A registry-backed fleet is ready
// whenever it is up (residency is the scheduler's business). A shard
// fleet is ready only when every shard admits queries: a degraded fleet
// answers 503 with Retry-After and the per-shard availability, breaker
// state and restart counts, so a load balancer drains it while node
// queries on healthy shards keep being served to whoever still asks.
func (a *API) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if a.shard == nil {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
		return
	}
	sst := a.shard.ShardStats()
	ready := true
	for _, ok := range sst.Available {
		if !ok {
			ready = false
			break
		}
	}
	body := map[string]any{
		"shards":    sst.Shards,
		"available": sst.Available,
		"breaker":   sst.Breaker,
		"restarts":  sst.Restarts,
	}
	if ready {
		body["status"] = "ready"
		writeJSON(w, http.StatusOK, body)
		return
	}
	body["status"] = "degraded"
	w.Header().Set("Retry-After", retryAfterSeconds)
	writeJSON(w, http.StatusServiceUnavailable, body)
}

// httpStatus maps an API error to its HTTP status. Client-caused errors
// are 4xx — a 503 would invite retries of requests that can never
// succeed. ErrShardUnavailable, enclave.ErrEnclaveLost and the deadline
// errors are listed explicitly even though they share the default's 503:
// each is transient server state where a retry is exactly right (a lost
// shard is being re-sealed by the recovery loop; a deadline says the
// fleet was too slow this time, not that the query is bad), and pinning
// them here keeps the sentinel→status contract under test as the default
// evolves. Every 503 and 429 carries a Retry-After header (httpError).
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShardUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, enclave.ErrEnclaveLost):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrScoresDisabled):
		return http.StatusForbidden
	case errors.Is(err, registry.ErrUnknownVault):
		return http.StatusNotFound
	case errors.Is(err, registry.ErrNodeQueriesDisabled), errors.Is(err, ErrNodeQueriesDisabled):
		return http.StatusNotImplemented
	case errors.Is(err, subgraph.ErrTooManySeeds),
		errors.Is(err, core.ErrNodeOutOfRange),
		errors.Is(err, errEmptyNodes):
		return http.StatusBadRequest
	default:
		return http.StatusServiceUnavailable
	}
}

// writeJSON sends one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds is the Retry-After hint attached to every throttled
// (429) and transiently failed (503) response: long enough for a breaker
// recovery round or a token refill, short enough that clients re-probe a
// recovered fleet promptly.
const retryAfterSeconds = "1"

// httpError sends a JSON error body with the given status. Retryable
// statuses (429, 503) carry a Retry-After header so well-behaved clients
// back off instead of hammering a recovering fleet.
func httpError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
