package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"gnnvault/internal/datasets"
	"gnnvault/internal/mat"
	"gnnvault/internal/obs"
	"gnnvault/internal/registry"
)

// obsAPI is testAPI with the flight recorder wired end to end: one span
// ring feeds the registry, every planned workspace and GET /debug/trace.
func obsAPI(t *testing.T) (*datasets.Dataset, *API, *obs.Ring) {
	t.Helper()
	ring := obs.NewRing(4096)
	nqCfg := *nodeQueryCfg()
	ds, _, reg, _ := multiFleet(t, 4, registry.Config{NodeQuery: &nqCfg, Recorder: ring})
	if err := reg.EnableNodeQueries("parallel", ds.X); err != nil {
		reg.Close()
		t.Fatalf("EnableNodeQueries: %v", err)
	}
	srv := NewMulti(reg, Config{Workers: 2, MaxBatch: 4})
	api := NewAPI(srv, reg, APIConfig{
		Vaults: []APIVault{
			{ID: "parallel", Dataset: "cora", Design: "parallel", Nodes: ds.Graph.N()},
			{ID: "series", Dataset: "cora", Design: "series", Nodes: ds.Graph.N()},
		},
		Features:    func(string) *mat.Matrix { return ds.X },
		NodeQueries: true,
		Trace:       ring,
	})
	t.Cleanup(func() {
		srv.Close()
		reg.Close()
	})
	return ds, api, ring
}

// scrape GETs path off the test server and returns the body.
func scrape(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close() //nolint:errcheck
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// parseProm parses Prometheus text exposition into series → value,
// failing the test on any malformed sample line.
func parseProm(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		series, raw := line[:i], line[i+1:]
		if !strings.HasPrefix(series, "gnnvault_") {
			t.Fatalf("unexpected metric family in %q", line)
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[series] = v
	}
	return out
}

// TestMetricsEndToEndScrape drives real traffic through the HTTP API and
// then checks the /metrics exposition parses and reconciles with it:
// per-endpoint request histogram counts, per-vault error attribution, the
// worker-pool counters and a live enclave ledger.
func TestMetricsEndToEndScrape(t *testing.T) {
	_, api, _ := obsAPI(t)
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	const fulls, nodes = 3, 2
	for i := 0; i < fulls; i++ {
		if code, out := postJSON(t, ts, "/predict", "c1", map[string]any{"vault": "parallel", "nodes": []int{0, 1}}); code != http.StatusOK {
			t.Fatalf("predict %d: status %d (%v)", i, code, out)
		}
	}
	for i := 0; i < nodes; i++ {
		if code, out := postJSON(t, ts, "/predict_nodes", "c1", map[string]any{"vault": "parallel", "nodes": []int{1, 2}}); code != http.StatusOK {
			t.Fatalf("predict_nodes %d: status %d (%v)", i, code, out)
		}
	}
	// series never enabled node queries: a 501 that must surface as one
	// error attributed to the series vault.
	if code, _ := postJSON(t, ts, "/predict_nodes", "c1", map[string]any{"vault": "series", "nodes": []int{1, 2}}); code != http.StatusNotImplemented {
		t.Fatalf("node query on series: status %d, want 501", code)
	}

	code, body := scrape(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	m := parseProm(t, body)

	wantCounts := map[string]float64{
		`gnnvault_request_seconds_count{endpoint="predict",vault="parallel",precision="fp64"}`:       fulls,
		`gnnvault_request_seconds_count{endpoint="predict_nodes",vault="parallel",precision="fp64"}`: nodes,
		`gnnvault_request_seconds_count{endpoint="predict_nodes",vault="series",precision="fp64"}`:   1,
		`gnnvault_request_errors_total{vault="series"}`:                                              1,
		`gnnvault_request_errors_total{vault="parallel"}`:                                            0,
		`gnnvault_rate_limited_total{vault="parallel"}`:                                              0,
		`gnnvault_serve_completed_total`:                                                             fulls + nodes,
		`gnnvault_serve_errors_total`:                                                                1,
	}
	for series, want := range wantCounts {
		if got, ok := m[series]; !ok || got != want {
			t.Errorf("%s = %v (present %v), want %v", series, got, ok, want)
		}
	}
	for series, floor := range map[string]float64{
		`gnnvault_ecalls_total`:         1,
		`gnnvault_ecall_bytes_in_total`: 1,
		`gnnvault_epc_limit_bytes`:      1,
		`gnnvault_plans_total`:          1,
	} {
		if m[series] < floor {
			t.Errorf("%s = %v, want >= %v", series, m[series], floor)
		}
	}
	for _, series := range []string{
		`gnnvault_vault_resident{vault="parallel"}`,
		`gnnvault_vault_resident{vault="series"}`,
		`gnnvault_serve_latency_seconds_count{endpoint="predict"}`,
		`gnnvault_epc_used_bytes`, `gnnvault_epc_free_bytes`,
		`gnnvault_ocalls_total`, `gnnvault_ecall_bytes_out_total`,
		`gnnvault_page_swaps_total`, `gnnvault_spill_bytes_total`,
		`gnnvault_serve_requests_total`, `gnnvault_serve_batches_total`,
		`gnnvault_evictions_total`,
	} {
		if _, ok := m[series]; !ok {
			t.Errorf("series %s missing from scrape", series)
		}
	}
}

// jsonSpan mirrors the /debug/trace span tree for decoding.
type jsonSpan struct {
	Kind     string      `json:"kind"`
	Op       string      `json:"op"`
	Rows     int32       `json:"rows"`
	Tiles    int32       `json:"tiles"`
	DurUS    float64     `json:"dur_us"`
	Children []*jsonSpan `json:"children"`
}

// kindCounts tallies span kinds over a subtree.
func kindCounts(s *jsonSpan, into map[string]int) {
	into[s.Kind]++
	for _, c := range s.Children {
		kindCounts(c, into)
	}
}

// findChild returns the first direct child with the given kind.
func findChild(s *jsonSpan, kind string) *jsonSpan {
	for _, c := range s.Children {
		if c.Kind == kind {
			return c
		}
	}
	return nil
}

// TestDebugTraceSpanTrees checks GET /debug/trace reassembles the flight
// recorder into per-query trees: a node query shows its expand → induce →
// backbone → ECALL stages with per-op spans inside the ECALL, and a
// full-graph query shows backbone and ECALL stages wrapping machine ops.
func TestDebugTraceSpanTrees(t *testing.T) {
	_, api, ring := obsAPI(t)
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	if _, err := api.PredictNodes("c1", "parallel", []int{1, 2}); err != nil {
		t.Fatalf("PredictNodes: %v", err)
	}
	if _, err := api.Predict("c1", "parallel", []int{0, 1}); err != nil {
		t.Fatalf("Predict: %v", err)
	}

	code, body := scrape(t, ts, "/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status %d: %s", code, body)
	}
	var resp struct {
		Capacity int `json:"capacity"`
		Recorded int `json:"recorded"`
		Traces   []struct {
			Trace uint64    `json:"trace"`
			Root  *jsonSpan `json:"root"`
		} `json:"traces"`
		Events []*jsonSpan `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("decoding trace response: %v", err)
	}
	if resp.Capacity != ring.Cap() || resp.Recorded == 0 {
		t.Fatalf("capacity %d recorded %d, want capacity %d and recorded > 0",
			resp.Capacity, resp.Recorded, ring.Cap())
	}
	// Registry plan events are trace-less and must surface separately.
	planEvents := 0
	for _, e := range resp.Events {
		if e.Kind == "plan" {
			planEvents++
		}
	}
	if planEvents == 0 {
		t.Errorf("no plan events in trace response")
	}

	var nodeTree, fullTree *jsonSpan
	for _, tr := range resp.Traces {
		switch tr.Root.Kind {
		case "node_query":
			nodeTree = tr.Root
		case "query":
			fullTree = tr.Root
		}
	}
	if nodeTree == nil {
		t.Fatalf("no node_query trace captured")
	}
	counts := map[string]int{}
	kindCounts(nodeTree, counts)
	for _, stage := range []string{"expand", "induce", "backbone", "ecall"} {
		if counts[stage] == 0 {
			t.Errorf("node query trace missing %s stage (have %v)", stage, counts)
		}
	}
	if ecall := findChild(nodeTree, "ecall"); ecall != nil {
		sub := map[string]int{}
		kindCounts(ecall, sub)
		if sub["induce_private"] == 0 {
			t.Errorf("ECALL span missing private induction child (have %v)", sub)
		}
		if sub["op"] == 0 {
			t.Errorf("ECALL span has no rectifier op spans (have %v)", sub)
		}
	}

	if fullTree == nil {
		t.Fatalf("no full-graph query trace captured")
	}
	counts = map[string]int{}
	kindCounts(fullTree, counts)
	if counts["backbone"] == 0 || counts["ecall"] == 0 || counts["op"] == 0 {
		t.Errorf("full-graph trace missing stages: %v", counts)
	}

	// ?n must bound the window and reject garbage.
	if code, _ := scrape(t, ts, "/debug/trace?n=1"); code != http.StatusOK {
		t.Fatalf("/debug/trace?n=1 status %d", code)
	}
	if code, _ := scrape(t, ts, "/debug/trace?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("/debug/trace?n=bogus status %d, want 400", code)
	}
}

// TestTraceDisabled pins the 404 contract when no ring is configured.
func TestTraceDisabled(t *testing.T) {
	_, api, _, _ := testAPI(t, Config{Workers: 1}, nil)
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()
	if code, _ := scrape(t, ts, "/debug/trace"); code != http.StatusNotFound {
		t.Fatalf("/debug/trace without ring: status %d, want 404", code)
	}
}

// TestMetricsTraceRaceHammer scrapes /metrics and /debug/trace while
// concurrent clients drive both predict endpoints, then reconciles the
// final scrape against the issued traffic. Run under -race this pins the
// telemetry core's concurrency contract.
func TestMetricsTraceRaceHammer(t *testing.T) {
	_, api, _ := obsAPI(t)
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	const clients, perClient, scrapes = 3, 6, 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients+2)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				var err error
				if r%2 == 1 {
					_, err = api.PredictNodes(fmt.Sprintf("c%d", c), "parallel", []int{1, 2})
				} else {
					_, err = api.Predict(fmt.Sprintf("c%d", c), "parallel", []int{0, 1, 2})
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	for _, path := range []string{"/metrics", "/debug/trace"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < scrapes; i++ {
				if code, _ := scrape(t, ts, path); code != http.StatusOK {
					errCh <- fmt.Errorf("%s scrape status %d", path, code)
					return
				}
			}
		}(path)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("hammer: %v", err)
	}

	_, body := scrape(t, ts, "/metrics")
	m := parseProm(t, body)
	full := m[`gnnvault_request_seconds_count{endpoint="predict",vault="parallel",precision="fp64"}`]
	node := m[`gnnvault_request_seconds_count{endpoint="predict_nodes",vault="parallel",precision="fp64"}`]
	if int(full) != clients*perClient/2 || int(node) != clients*perClient/2 {
		t.Errorf("request counts full=%v node=%v, want %d each", full, node, clients*perClient/2)
	}
	if got, want := m[`gnnvault_serve_completed_total`], float64(clients*perClient); got != want {
		t.Errorf("serve_completed_total = %v, want %v", got, want)
	}
	if m[`gnnvault_serve_requests_total`] != m[`gnnvault_serve_completed_total`]+m[`gnnvault_serve_errors_total`] {
		t.Errorf("request accounting does not reconcile: %v != %v + %v",
			m[`gnnvault_serve_requests_total`], m[`gnnvault_serve_completed_total`], m[`gnnvault_serve_errors_total`])
	}
}
