package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"time"

	"gnnvault/internal/enclave"
	"gnnvault/internal/exec"
	"gnnvault/internal/obs"
)

// The /metrics vocabulary. Every name listed here must be documented in
// README.md ("Metrics reference") — cmd/doclint cross-checks the two, so
// adding a metric without documenting it fails CI.
const (
	// API layer: one histogram family per endpoint × vault × precision,
	// plus per-vault error and throttle counters.
	mRequestSeconds = "gnnvault_request_seconds"
	mRequestErrors  = "gnnvault_request_errors_total"
	mRateLimited    = "gnnvault_rate_limited_total"

	// Worker pool: queue-to-answer accounting shared by both endpoints.
	mServeRequests  = "gnnvault_serve_requests_total"
	mServeCompleted = "gnnvault_serve_completed_total"
	mServeErrors    = "gnnvault_serve_errors_total"
	mServeBatches   = "gnnvault_serve_batches_total"
	mServeLatency   = "gnnvault_serve_latency_seconds"
	mSpillBytes     = "gnnvault_spill_bytes_total"

	// Registry scheduler: residency and plan/evict churn.
	mVaultResident = "gnnvault_vault_resident"
	mPlans         = "gnnvault_plans_total"
	mEvictions     = "gnnvault_evictions_total"

	// Enclave: EPC occupancy gauges and the transition ledger.
	mEPCUsed   = "gnnvault_epc_used_bytes"
	mEPCFree   = "gnnvault_epc_free_bytes"
	mEPCLimit  = "gnnvault_epc_limit_bytes"
	mECalls    = "gnnvault_ecalls_total"
	mOCalls    = "gnnvault_ocalls_total"
	mBytesIn   = "gnnvault_ecall_bytes_in_total"
	mBytesOut  = "gnnvault_ecall_bytes_out_total"
	mPageSwaps = "gnnvault_page_swaps_total"

	// Shard fleet (sharded serving only): per-shard halo traffic and EPC
	// occupancy, plus the full-graph fan-out latency distribution.
	mHaloBytes    = "gnnvault_halo_bytes_total"
	mShardEPCUsed = "gnnvault_shard_epc_used_bytes"
	mShardFanout  = "gnnvault_shard_fanout_seconds"

	// Fault tolerance (sharded serving only): breaker and recovery state
	// plus the degradation and deadline counters.
	mShardRestarts    = "gnnvault_shard_restarts_total"
	mBreakerState     = "gnnvault_breaker_state"
	mDegraded         = "gnnvault_requests_degraded_total"
	mDeadlineExceeded = "gnnvault_deadline_exceeded_total"
)

// Endpoint label values.
const (
	epPredict      = "predict"
	epPredictNodes = "predict_nodes"
)

// nsToSeconds converts recorded nanosecond samples to the seconds
// Prometheus histogram conventions expect.
const nsToSeconds = 1e-9

// vaultMetrics is one fleet member's API-layer instrumentation:
// per-endpoint request latency histograms plus error and rate-limit
// counters. All fields are atomics; observing never allocates.
type vaultMetrics struct {
	predict     obs.Histogram // full-graph request latency, ns
	predictNode obs.Histogram // node-query request latency, ns
	errors      obs.Counter   // failed requests (any cause)
	rateLimited obs.Counter   // failures that were throttles
}

// observeReq records one API request's latency and outcome against its
// vault's metrics. Unknown vault IDs have no metrics entry (the request
// died at lookup); they are skipped rather than aggregated into a
// catch-all that would mask the fleet catalog.
func (a *API) observeReq(vault, endpoint string, start time.Time, err error) {
	vm := a.vm[vault]
	if vm == nil {
		return
	}
	lat := time.Since(start).Nanoseconds()
	if endpoint == epPredictNodes {
		vm.predictNode.Observe(lat)
	} else {
		vm.predict.Observe(lat)
	}
	if err != nil {
		vm.errors.Inc()
		if errors.Is(err, ErrRateLimited) {
			vm.rateLimited.Inc()
		}
	}
}

// handleMetrics renders the whole serving stack in Prometheus text
// exposition format: API request histograms, worker-pool counters,
// registry residency and enclave ledger — one scrape, no client library.
func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	ids := make([]string, 0, len(a.cfg.Vaults))
	for _, v := range a.cfg.Vaults {
		ids = append(ids, v.ID)
	}
	sort.Strings(ids)

	obs.WriteHeader(w, mRequestSeconds, "histogram", "API request latency by endpoint, vault and precision.")
	for _, id := range ids {
		vm := a.vm[id]
		obs.WriteHistogram(w, mRequestSeconds,
			[]obs.Label{{Name: "endpoint", Value: epPredict}, {Name: "vault", Value: id}, {Name: "precision", Value: a.precision}},
			vm.predict.Snapshot(), nsToSeconds)
		obs.WriteHistogram(w, mRequestSeconds,
			[]obs.Label{{Name: "endpoint", Value: epPredictNodes}, {Name: "vault", Value: id}, {Name: "precision", Value: a.precision}},
			vm.predictNode.Snapshot(), nsToSeconds)
	}
	obs.WriteHeader(w, mRequestErrors, "counter", "Failed API requests by vault.")
	for _, id := range ids {
		obs.WriteSample(w, mRequestErrors, []obs.Label{{Name: "vault", Value: id}}, float64(a.vm[id].errors.Load()))
	}
	obs.WriteHeader(w, mRateLimited, "counter", "API requests rejected by the rate limiter, by vault.")
	for _, id := range ids {
		obs.WriteSample(w, mRateLimited, []obs.Label{{Name: "vault", Value: id}}, float64(a.vm[id].rateLimited.Load()))
	}

	st := a.serveStats()
	obs.WriteHeader(w, mServeRequests, "counter", "Requests accepted by the worker pool.")
	obs.WriteSample(w, mServeRequests, nil, float64(st.Requests))
	obs.WriteHeader(w, mServeCompleted, "counter", "Requests answered successfully by the worker pool.")
	obs.WriteSample(w, mServeCompleted, nil, float64(st.Completed))
	obs.WriteHeader(w, mServeErrors, "counter", "Requests answered with an error by the worker pool.")
	obs.WriteSample(w, mServeErrors, nil, float64(st.Errors))
	obs.WriteHeader(w, mServeBatches, "counter", "Worker wake-ups (micro-batches).")
	obs.WriteSample(w, mServeBatches, nil, float64(st.Batches))
	obs.WriteHeader(w, mServeLatency, "histogram", "Enqueue-to-answer latency by endpoint family.")
	obs.WriteHistogram(w, mServeLatency, []obs.Label{{Name: "endpoint", Value: epPredict}}, st.FullLatency, nsToSeconds)
	obs.WriteHistogram(w, mServeLatency, []obs.Label{{Name: "endpoint", Value: epPredictNodes}}, st.NodeLatency, nsToSeconds)
	obs.WriteHeader(w, mSpillBytes, "counter", "Modelled tile-flush traffic of answered full-graph requests.")
	obs.WriteSample(w, mSpillBytes, nil, float64(st.SpillBytes))

	if a.reg != nil {
		rst := a.reg.Stats()
		obs.WriteHeader(w, mVaultResident, "gauge", "Whether the vault currently holds workspace EPC (1) or not (0).")
		for _, vs := range rst.PerVault {
			val := 0.0
			if vs.Resident {
				val = 1
			}
			obs.WriteSample(w, mVaultResident, []obs.Label{{Name: "vault", Value: vs.ID}}, val)
		}
		obs.WriteHeader(w, mPlans, "counter", "Cold-start workspace plans across the fleet.")
		obs.WriteSample(w, mPlans, nil, float64(rst.Plans))
		obs.WriteHeader(w, mEvictions, "counter", "Workspaces evicted to admit other vaults.")
		obs.WriteSample(w, mEvictions, nil, float64(rst.Evictions))

		writeEnclaveGauges(w, rst.EPCUsed, rst.EPCFree, rst.EPCLimit, rst.Ledger)
	}
	if a.shard != nil {
		sst := a.shard.ShardStats()
		var used, free, limit int64
		for i := 0; i < sst.Shards; i++ {
			used += sst.EPCUsed[i]
			free += sst.EPCFree[i]
			limit += sst.EPCLimit[i]
		}
		writeEnclaveGauges(w, used, free, limit, sst.Ledger)

		obs.WriteHeader(w, mHaloBytes, "counter", "Boundary-activation bytes gathered across shard enclaves, by shard.")
		for i := 0; i < sst.Shards; i++ {
			obs.WriteSample(w, mHaloBytes, []obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}, float64(sst.HaloBytes[i]))
		}
		obs.WriteHeader(w, mShardEPCUsed, "gauge", "Enclave Page Cache bytes charged per shard enclave.")
		for i := 0; i < sst.Shards; i++ {
			obs.WriteSample(w, mShardEPCUsed, []obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}, float64(sst.EPCUsed[i]))
		}
		obs.WriteHeader(w, mShardFanout, "histogram", "Full-graph fan-out wall time across the shard fleet.")
		obs.WriteHistogram(w, mShardFanout, nil, sst.Fanout, nsToSeconds)

		obs.WriteHeader(w, mShardRestarts, "counter", "Successful automatic shard recoveries (re-seal, rejoin, re-prove), by shard.")
		for i := 0; i < sst.Shards; i++ {
			obs.WriteSample(w, mShardRestarts, []obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}, float64(sst.Restarts[i]))
		}
		obs.WriteHeader(w, mBreakerState, "gauge", "Per-shard circuit breaker state: 0 closed, 1 open, 2 half-open.")
		for i := 0; i < sst.Shards; i++ {
			obs.WriteSample(w, mBreakerState, []obs.Label{{Name: "shard", Value: strconv.Itoa(i)}}, float64(sst.Breaker[i]))
		}
		obs.WriteHeader(w, mDegraded, "counter", "Node queries answered successfully while some shard was offline.")
		obs.WriteSample(w, mDegraded, nil, float64(st.Degraded))
		obs.WriteHeader(w, mDeadlineExceeded, "counter", "Requests that failed their serving deadline (queued or mid-fan-out).")
		obs.WriteSample(w, mDeadlineExceeded, nil, float64(st.DeadlineExceeded))
	}
}

// writeEnclaveGauges renders the EPC occupancy gauges and transition
// ledger counters shared by the registry-backed and sharded expositions
// (the sharded form sums them over shard enclaves).
func writeEnclaveGauges(w http.ResponseWriter, used, free, limit int64, led enclave.Ledger) {
	obs.WriteHeader(w, mEPCUsed, "gauge", "Enclave Page Cache bytes currently charged.")
	obs.WriteSample(w, mEPCUsed, nil, float64(used))
	obs.WriteHeader(w, mEPCFree, "gauge", "Enclave Page Cache headroom before the next plan must evict.")
	obs.WriteSample(w, mEPCFree, nil, float64(free))
	obs.WriteHeader(w, mEPCLimit, "gauge", "Enclave Page Cache capacity.")
	obs.WriteSample(w, mEPCLimit, nil, float64(limit))
	obs.WriteHeader(w, mECalls, "counter", "Modelled world switches into the enclave.")
	obs.WriteSample(w, mECalls, nil, float64(led.ECalls))
	obs.WriteHeader(w, mOCalls, "counter", "Modelled world switches out of the enclave.")
	obs.WriteSample(w, mOCalls, nil, float64(led.OCalls))
	obs.WriteHeader(w, mBytesIn, "counter", "ECALL payload bytes crossing into the enclave (embeddings plus spill).")
	obs.WriteSample(w, mBytesIn, nil, float64(led.BytesIn))
	obs.WriteHeader(w, mBytesOut, "counter", "ECALL result bytes crossing out of the enclave.")
	obs.WriteSample(w, mBytesOut, nil, float64(led.BytesOut))
	obs.WriteHeader(w, mPageSwaps, "counter", "Modelled EPC page swaps.")
	obs.WriteSample(w, mPageSwaps, nil, float64(led.PageSwaps))
}

// --- /debug/trace ---------------------------------------------------------

// traceSpan is one node of a rendered span tree.
type traceSpan struct {
	Kind     string       `json:"kind"`
	Op       string       `json:"op,omitempty"`
	Rows     int32        `json:"rows,omitempty"`
	Tiles    int32        `json:"tiles,omitempty"`
	Bytes    int64        `json:"bytes,omitempty"`
	StartUS  float64      `json:"start_us"`
	DurUS    float64      `json:"dur_us"`
	Children []*traceSpan `json:"children,omitempty"`
}

// traceTree is one query's span tree (trace root plus nested stages).
type traceTree struct {
	Trace uint64     `json:"trace"`
	Root  *traceSpan `json:"root"`
}

// traceResponse is the GET /debug/trace payload: the last n spans of the
// flight recorder, reassembled into per-query trees, plus trace-less
// scheduler events (plans, evictions).
type traceResponse struct {
	Capacity int          `json:"capacity"`
	Recorded int          `json:"recorded"`
	Traces   []*traceTree `json:"traces"`
	Events   []*traceSpan `json:"events,omitempty"`
}

// renderSpan converts a recorded span to its JSON form.
func renderSpan(s obs.Span) *traceSpan {
	t := &traceSpan{
		Kind:    s.Kind.String(),
		Rows:    s.Rows,
		Tiles:   s.Tiles,
		Bytes:   s.Bytes,
		StartUS: float64(s.Start) / 1e3,
		DurUS:   float64(s.Dur) / 1e3,
	}
	if s.Kind == obs.SpanOp {
		t.Op = exec.OpKind(s.Op).String()
	}
	return t
}

// buildTraces reassembles a flat recent-span window into span trees:
// spans sharing a trace ID form one tree, children attach to the span
// whose ID matches their Parent (orphans whose parent the ring already
// overwrote fall back to the root), and trace-less spans (registry plan
// and evict events) come back separately.
func buildTraces(spans []obs.Span) ([]*traceTree, []*traceSpan) {
	type node struct {
		span obs.Span
		out  *traceSpan
	}
	var events []*traceSpan
	byTrace := map[uint64][]node{}
	order := []uint64{}
	for _, s := range spans {
		if s.Trace == 0 {
			events = append(events, renderSpan(s))
			continue
		}
		if _, seen := byTrace[s.Trace]; !seen {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], node{span: s, out: renderSpan(s)})
	}
	trees := make([]*traceTree, 0, len(order))
	for _, id := range order {
		nodes := byTrace[id]
		byID := map[uint64]*traceSpan{}
		var root *traceSpan
		for _, n := range nodes {
			if n.span.ID != 0 {
				byID[n.span.ID] = n.out
			}
			if n.span.ID == n.span.Trace {
				root = n.out
			}
		}
		if root == nil {
			// The ring overwrote the root (partially captured query):
			// synthesise one so the surviving spans still render.
			root = &traceSpan{Kind: "partial"}
		}
		for _, n := range nodes {
			if n.out == root {
				continue
			}
			parent := byID[n.span.Parent]
			if parent == nil || parent == n.out {
				parent = root
			}
			parent.Children = append(parent.Children, n.out)
		}
		sortSpans(root)
		trees = append(trees, &traceTree{Trace: id, Root: root})
	}
	return trees, events
}

// sortSpans orders every child list by start time, recursively.
func sortSpans(t *traceSpan) {
	sort.SliceStable(t.Children, func(i, j int) bool { return t.Children[i].StartUS < t.Children[j].StartUS })
	for _, c := range t.Children {
		sortSpans(c)
	}
}

// handleTrace serves GET /debug/trace?n=K: the last K spans (default and
// cap: the ring capacity) as per-query span trees. Without a configured
// ring the endpoint reports 404 — tracing was not enabled.
func (a *API) handleTrace(w http.ResponseWriter, r *http.Request) {
	ring := a.cfg.Trace
	if ring == nil {
		httpError(w, http.StatusNotFound, errors.New("serve: tracing not enabled (start with -trace-buffer)"))
		return
	}
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, errors.New("serve: n must be a non-negative integer"))
			return
		}
		n = v
	}
	spans := ring.Last(n)
	traces, events := buildTraces(spans)
	resp := traceResponse{
		Capacity: ring.Cap(),
		Recorded: len(spans),
		Traces:   traces,
		Events:   events,
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
