package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/mat"
	"gnnvault/internal/registry"
	"gnnvault/internal/substitute"
)

var (
	shardOnce  sync.Once
	shardDS    *datasets.Dataset
	shardBB    *core.Backbone
	shardRec   *core.Rectifier
	shardRef   *core.Vault        // single-enclave reference deployment
	shardFleet *core.ShardedVault // 3-shard fleet over the same model
)

// testShardedVault trains one model and deploys it twice: once into a
// single enclave (the bit-identity reference) and once across a 3-shard
// fleet. Shared across the package's sharded tests.
func testShardedVault(t testing.TB) (*datasets.Dataset, *core.Vault, *core.ShardedVault) {
	t.Helper()
	shardOnce.Do(func() {
		shardDS = datasets.Load("cora")
		cfg := core.TrainConfig{Epochs: 20, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
		spec := core.SpecForDataset("cora")
		shardBB = core.TrainBackbone(shardDS, spec, substitute.KindKNN, substitute.KNN(shardDS.X, 2), cfg)
		shardRec = core.TrainRectifier(shardDS, shardBB, core.Parallel, cfg)
		ref, err := core.Deploy(shardBB, shardRec, shardDS.Graph, enclave.DefaultCostModel())
		if err != nil {
			panic(err)
		}
		fleet, err := core.DeploySharded(shardBB, shardRec, shardDS.Graph, enclave.DefaultCostModel(), 3)
		if err != nil {
			panic(err)
		}
		shardRef = ref
		shardFleet = fleet
	})
	return shardDS, shardRef, shardFleet
}

// testFreshFleet deploys a private shard fleet from the shared trained
// model, for tests that kill enclaves: chaos must never poison the
// package-shared fleet.
func testFreshFleet(t testing.TB, shards int) (*datasets.Dataset, *core.Vault, *core.ShardedVault) {
	t.Helper()
	ds, ref, _ := testShardedVault(t)
	fleet, err := core.DeploySharded(shardBB, shardRec, ds.Graph, enclave.DefaultCostModel(), shards)
	if err != nil {
		t.Fatalf("deploying fresh fleet: %v", err)
	}
	t.Cleanup(fleet.Undeploy)
	return ds, ref, fleet
}

func TestShardedServerMatchesSingleEnclave(t *testing.T) {
	ds, ref, fleet := testShardedVault(t)
	want, _, err := ref.Predict(ds.X)
	if err != nil {
		t.Fatalf("reference Predict: %v", err)
	}
	nq := registry.NodeQueryConfig{}
	s, err := NewSharded(fleet, Config{Workers: 2, NodeQuery: &nq, Features: ds.X})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer s.Close()

	got, err := s.Predict(ds.X)
	if err != nil {
		t.Fatalf("sharded Predict: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d (sharded diverged from single enclave)", i, got[i], want[i])
		}
	}

	// Node queries route to the owning shard but answer identically to a
	// single-enclave server with the same sampling geometry.
	single, err := New(ref, Config{Workers: 1, NodeQuery: &nq, Features: ds.X})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer single.Close()
	n := fleet.Nodes()
	for _, seeds := range [][]int{{0}, {n - 1}, {n / 2, n/2 + 1}, {1, n - 2, n / 3}} {
		wantN, err := single.PredictNodes(seeds)
		if err != nil {
			t.Fatalf("single PredictNodes(%v): %v", seeds, err)
		}
		gotN, err := s.PredictNodes(seeds)
		if err != nil {
			t.Fatalf("sharded PredictNodes(%v): %v", seeds, err)
		}
		for i := range wantN {
			if gotN[i] != wantN[i] {
				t.Fatalf("PredictNodes(%v)[%d] = %d, want %d", seeds, i, gotN[i], wantN[i])
			}
		}
	}

	st := s.ShardStats()
	if st.Shards != 3 {
		t.Fatalf("ShardStats.Shards = %d, want 3", st.Shards)
	}
	var halo int64
	for i, h := range st.HaloBytes {
		halo += h
		if st.EPCUsed[i] <= 0 {
			t.Fatalf("shard %d EPCUsed = %d, want > 0", i, st.EPCUsed[i])
		}
		if !st.Available[i] {
			t.Fatalf("shard %d unexpectedly offline", i)
		}
	}
	if halo <= 0 {
		t.Fatalf("accumulated halo bytes = %d, want > 0 after sharded traffic", halo)
	}
	if st.Fanout.Count == 0 {
		t.Fatal("fan-out histogram recorded no full-graph samples")
	}
}

func TestShardedServerShardOutage(t *testing.T) {
	ds, _, fleet := testShardedVault(t)
	nq := registry.NodeQueryConfig{}
	s, err := NewSharded(fleet, Config{Workers: 1, NodeQuery: &nq, Features: ds.X})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer s.Close()

	s.SetShardAvailable(1, false)
	if _, err := s.Predict(ds.X); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("full-graph Predict with shard 1 offline: err = %v, want ErrShardUnavailable", err)
	}
	// A node query owned by the offline shard fails; one owned by a
	// serving shard still answers.
	offSeed := fleet.Part.Bounds[1] // first row of shard 1
	if _, err := s.PredictNodes([]int{offSeed}); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("PredictNodes on offline shard: err = %v, want ErrShardUnavailable", err)
	}
	if _, err := s.PredictNodes([]int{0}); err != nil {
		t.Fatalf("PredictNodes on serving shard: %v", err)
	}

	s.SetShardAvailable(1, true)
	if _, err := s.Predict(ds.X); err != nil {
		t.Fatalf("Predict after shard rejoin: %v", err)
	}
}

func TestShardedServerLabelOnly(t *testing.T) {
	ds, _, fleet := testShardedVault(t)
	if _, err := NewSharded(fleet, Config{ExposeScores: true}); !errors.Is(err, ErrScoresDisabled) {
		t.Fatalf("NewSharded with ExposeScores: err = %v, want ErrScoresDisabled", err)
	}
	s, err := NewSharded(fleet, Config{Workers: 1})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer s.Close()
	if _, _, err := s.PredictScores(ds.X); !errors.Is(err, ErrScoresDisabled) {
		t.Fatalf("PredictScores: err = %v, want ErrScoresDisabled", err)
	}
	if _, _, err := s.PredictNodesScores([]int{0}); !errors.Is(err, ErrScoresDisabled) {
		t.Fatalf("PredictNodesScores: err = %v, want ErrScoresDisabled", err)
	}
	if _, err := s.PredictNodes([]int{0}); !errors.Is(err, ErrNodeQueriesDisabled) {
		t.Fatalf("PredictNodes without NodeQuery: err = %v, want ErrNodeQueriesDisabled", err)
	}
}

// TestHTTPStatusSentinels pins the sentinel→status contract for the
// capacity/policy/fault refusals — a throttle is the client's problem
// (429), while EPC exhaustion, a shard outage, a lost enclave and a
// blown deadline are transient server state (503) — and checks the
// sentinels stay pairwise disjoint, so one can never be mistaken for
// another by errors.Is-based handling (the registry evicts on EPC
// pressure; it must not evict on throttles, outages or lost enclaves,
// and a lost enclave must trip the breaker where an outage echo must
// not). Retryable statuses must carry a Retry-After header.
func TestHTTPStatusSentinels(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"rate limited", ErrRateLimited, http.StatusTooManyRequests},
		{"shard unavailable", ErrShardUnavailable, http.StatusServiceUnavailable},
		{"epc exhausted", enclave.ErrEPCExhausted, http.StatusServiceUnavailable},
		{"enclave lost", enclave.ErrEnclaveLost, http.StatusServiceUnavailable},
		{"deadline exceeded", context.DeadlineExceeded, http.StatusServiceUnavailable},
		{"wrapped rate limited", fmt.Errorf("api: %w", ErrRateLimited), http.StatusTooManyRequests},
		{"wrapped shard unavailable", fmt.Errorf("api: %w", ErrShardUnavailable), http.StatusServiceUnavailable},
		{"wrapped epc exhausted", fmt.Errorf("api: %w", enclave.ErrEPCExhausted), http.StatusServiceUnavailable},
		{"wrapped enclave lost", fmt.Errorf("api: %w", enclave.ErrEnclaveLost), http.StatusServiceUnavailable},
		{"double-wrapped enclave lost", fmt.Errorf("serve: %w", fmt.Errorf("core: shard 1: %w", enclave.ErrEnclaveLost)), http.StatusServiceUnavailable},
		{"wrapped deadline", fmt.Errorf("serve: %w", context.DeadlineExceeded), http.StatusServiceUnavailable},
	}
	for _, tc := range cases {
		if got := httpStatus(tc.err); got != tc.want {
			t.Errorf("httpStatus(%s) = %d, want %d", tc.name, got, tc.want)
		}
	}
	sentinels := []error{ErrRateLimited, ErrShardUnavailable, enclave.ErrEPCExhausted, enclave.ErrEnclaveLost}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Errorf("sentinel %v is not disjoint from %v", a, b)
			}
		}
	}
	// Retryable refusals tell clients when to come back.
	for _, err := range []error{ErrRateLimited, ErrShardUnavailable, enclave.ErrEnclaveLost} {
		w := httptest.NewRecorder()
		httpError(w, httpStatus(err), err)
		if w.Header().Get("Retry-After") == "" {
			t.Errorf("httpError(%v) carries no Retry-After header", err)
		}
	}
	w := httptest.NewRecorder()
	httpError(w, httpStatus(core.ErrNodeOutOfRange), core.ErrNodeOutOfRange)
	if w.Header().Get("Retry-After") != "" {
		t.Error("client error (400) should not invite a retry")
	}
}

// TestShardedFanoutHammer drives the shard router from many goroutines at
// once — full-graph fan-outs, node queries across every shard, and a
// goroutine flipping shard availability under the traffic. Run under
// -race it is the concurrency regression test for the fleet barriers, the
// per-shard ECALL fan-out and the availability gating.
func TestShardedFanoutHammer(t *testing.T) {
	ds, ref, fleet := testShardedVault(t)
	want, _, err := ref.Predict(ds.X)
	if err != nil {
		t.Fatalf("reference Predict: %v", err)
	}
	nq := registry.NodeQueryConfig{}
	s, err := NewSharded(fleet, Config{Workers: 3, MaxBatch: 4, NodeQuery: &nq, Features: ds.X})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer s.Close()

	const clients, perClient = 8, 4
	n := fleet.Nodes()
	errCh := make(chan error, clients+1)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				if c%2 == 0 {
					got, err := s.Predict(ds.X)
					if errors.Is(err, ErrShardUnavailable) {
						continue // the flipper got there first; admission refusals are expected
					}
					if err != nil {
						errCh <- err
						return
					}
					for i := range want {
						if got[i] != want[i] {
							errCh <- errors.New("hammered result diverged from single-enclave reference")
							return
						}
					}
				} else {
					seed := (c*perClient + r) * (n / (clients * perClient))
					if _, err := s.PredictNodes([]int{seed}); err != nil && !errors.Is(err, ErrShardUnavailable) {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			sh := i % fleet.Shards()
			s.SetShardAvailable(sh, false)
			s.SetShardAvailable(sh, true)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Completed == 0 {
		t.Fatal("hammer completed no requests")
	}
}

// TestShardedAPISurface drives the HTTP front-end over a shard fleet:
// /predict answers bit-identically, score queries 403, /metrics exposes
// the shard families and /stats the per-shard section.
func TestShardedAPISurface(t *testing.T) {
	ds, ref, fleet := testShardedVault(t)
	want, _, err := ref.Predict(ds.X)
	if err != nil {
		t.Fatalf("reference Predict: %v", err)
	}
	s, err := NewSharded(fleet, Config{Workers: 1})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer s.Close()
	api := NewShardedAPI(s, APIConfig{
		Vaults:   []APIVault{{ID: "cora/parallel", Dataset: "cora", Design: "parallel", Nodes: fleet.Nodes()}},
		Features: func(string) *mat.Matrix { return ds.X },
	})
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/predict", "application/json",
		strings.NewReader(`{"vault":"cora/parallel","nodes":[0,1,2]}`))
	if err != nil {
		t.Fatalf("POST /predict: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /predict: status %d, want 200", resp.StatusCode)
	}
	var pr apiResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decoding /predict response: %v", err)
	}
	resp.Body.Close()
	for i, n := range []int{0, 1, 2} {
		if pr.Labels[i] != want[n] {
			t.Fatalf("label for node %d = %d, want %d", n, pr.Labels[i], want[n])
		}
	}

	resp, err = http.Post(srv.URL+"/predict", "application/json",
		strings.NewReader(`{"vault":"cora/parallel","scores":true}`))
	if err != nil {
		t.Fatalf("POST /predict scores: %v", err)
	}
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("score query against sharded fleet: status %d, want 403", resp.StatusCode)
	}
	resp.Body.Close()

	s.SetShardAvailable(0, false)
	resp, err = http.Post(srv.URL+"/predict", "application/json",
		strings.NewReader(`{"vault":"cora/parallel"}`))
	if err != nil {
		t.Fatalf("POST /predict offline: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict with shard offline: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	s.SetShardAvailable(0, true)

	body := getBody(t, srv.URL+"/metrics")
	for _, m := range []string{mHaloBytes, mShardEPCUsed, mShardFanout, mEPCUsed, mECalls} {
		if !strings.Contains(body, m) {
			t.Errorf("/metrics missing %s", m)
		}
	}
	if strings.Contains(body, mVaultResident) {
		t.Error("/metrics exposes registry residency for a registry-less shard fleet")
	}

	body = getBody(t, srv.URL+"/stats")
	for _, k := range []string{`"shards"`, `"halo_bytes"`, `"epc_used_bytes"`} {
		if !strings.Contains(body, k) {
			t.Errorf("/stats missing %s", k)
		}
	}
	body = getBody(t, srv.URL+"/vaults")
	if !strings.Contains(body, `"resident":true`) {
		t.Error("/vaults does not report the sharded vault as resident")
	}
}

// getBody fetches url and returns its body, failing the test on any
// transport or status error.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return string(raw)
}
