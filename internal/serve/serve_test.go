package serve

import (
	"errors"
	"sync"
	"testing"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/mat"
	"gnnvault/internal/registry"
	"gnnvault/internal/subgraph"
	"gnnvault/internal/substitute"
)

var (
	serveOnce  sync.Once
	serveDS    *datasets.Dataset
	serveVault *core.Vault
)

// testVault trains one small vault shared across the package's tests.
func testVault(t testing.TB) (*datasets.Dataset, *core.Vault) {
	t.Helper()
	serveOnce.Do(func() {
		serveDS = datasets.Load("cora")
		cfg := core.TrainConfig{Epochs: 20, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
		spec := core.SpecForDataset("cora")
		bb := core.TrainBackbone(serveDS, spec, substitute.KindKNN, substitute.KNN(serveDS.X, 2), cfg)
		rec := core.TrainRectifier(serveDS, bb, core.Parallel, cfg)
		v, err := core.Deploy(bb, rec, serveDS.Graph, enclave.DefaultCostModel())
		if err != nil {
			panic(err)
		}
		serveVault = v
	})
	return serveDS, serveVault
}

func TestServerMatchesDirectPredict(t *testing.T) {
	ds, v := testVault(t)
	want, _, err := v.Predict(ds.X)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	s, err := New(v, Config{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	got, err := s.Predict(ds.X)
	if err != nil {
		t.Fatalf("server Predict: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestServerConcurrentHammer drives the server from many goroutines at
// once; run under -race it is the concurrency regression test for the
// whole plan/workspace/enclave stack.
func TestServerConcurrentHammer(t *testing.T) {
	ds, v := testVault(t)
	want, _, err := v.Predict(ds.X)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	s, err := New(v, Config{Workers: 4, MaxBatch: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	const clients, perClient = 16, 5
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				got, err := s.Predict(ds.X)
				if err != nil {
					errCh <- err
					return
				}
				for i := range want {
					if got[i] != want[i] {
						errCh <- errors.New("concurrent result diverged from sequential Predict")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Completed != clients*perClient {
		t.Fatalf("completed %d, want %d", st.Completed, clients*perClient)
	}
	if st.Errors != 0 {
		t.Fatalf("%d errors", st.Errors)
	}
	if st.Batches == 0 || st.Batches > st.Completed {
		t.Fatalf("batches %d outside (0, %d]", st.Batches, st.Completed)
	}
	if st.AvgBatch < 1 {
		t.Fatalf("avg batch %f < 1", st.AvgBatch)
	}
	if st.AvgLatency <= 0 || st.MaxLatency < st.AvgLatency {
		t.Fatalf("latency stats inconsistent: avg %v max %v", st.AvgLatency, st.MaxLatency)
	}
	if st.Throughput <= 0 {
		t.Fatalf("throughput %f", st.Throughput)
	}
}

func TestServerBadInputSurfacesError(t *testing.T) {
	ds, v := testVault(t)
	s, err := New(v, Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	if _, err := s.Predict(mat.New(ds.X.Rows-1, ds.X.Cols)); err == nil {
		t.Fatal("mismatched rows did not error")
	}
	// Wrong feature width must surface as an error, not panic the worker.
	if _, err := s.Predict(mat.New(ds.X.Rows, ds.X.Cols+3)); err == nil {
		t.Fatal("mismatched cols did not error")
	}
	if got, err := s.Predict(ds.X); err != nil || len(got) != ds.X.Rows {
		t.Fatalf("server unhealthy after bad requests: %v", err)
	}
	if st := s.Stats(); st.Errors != 2 {
		t.Fatalf("errors %d, want 2", st.Errors)
	}
}

func TestServerCloseReleasesEPCAndRejects(t *testing.T) {
	ds, v := testVault(t)
	base := v.Enclave.EPCUsed()
	s, err := New(v, Config{Workers: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if used := v.Enclave.EPCUsed(); used <= base {
		t.Fatalf("workers did not charge EPC: %d vs %d", used, base)
	}
	if _, err := s.Predict(ds.X); err != nil {
		t.Fatalf("Predict: %v", err)
	}
	s.Close()
	s.Close() // idempotent
	if used := v.Enclave.EPCUsed(); used != base {
		t.Fatalf("EPC after close %d, want %d", used, base)
	}
	if _, err := s.Predict(ds.X); !errors.Is(err, ErrClosed) {
		t.Fatalf("Predict after close: %v, want ErrClosed", err)
	}
}

func TestServerTooManyWorkersFailsCleanly(t *testing.T) {
	_, v := testVault(t)
	base := v.Enclave.EPCUsed()
	// The cora workspace is ~1.5 MB; thousands of workers cannot fit 96 MB.
	if _, err := New(v, Config{Workers: 1 << 14}); err == nil {
		t.Fatal("oversubscribed pool did not fail")
	} else if !errors.Is(err, enclave.ErrEPCExhausted) {
		t.Fatalf("error %v, want ErrEPCExhausted", err)
	}
	if used := v.Enclave.EPCUsed(); used != base {
		t.Fatalf("failed New leaked EPC: %d vs %d", used, base)
	}
}

// nodeQueryCfg is the sampling geometry shared by the node-query serving
// tests; fanout 0 keeps extraction deterministic in the seed set alone.
func nodeQueryCfg() *registry.NodeQueryConfig {
	return &registry.NodeQueryConfig{Hops: 2, Fanout: 0, MaxSeeds: 4, Seed: 5}
}

// expectedNodeLabels computes the reference answer for a seed batch with
// a directly-planned workspace under the same geometry: extraction is a
// pure function of (config, seeds), so a server answering the same batch
// must return exactly these labels.
func expectedNodeLabels(t *testing.T, v *core.Vault, x *mat.Matrix, seeds []int) []int {
	t.Helper()
	nq := nodeQueryCfg()
	ws, err := v.PlanSubgraph(nq.MaxSeeds, nq.Subgraph())
	if err != nil {
		t.Fatalf("PlanSubgraph: %v", err)
	}
	defer ws.Release()
	labels, _, err := v.PredictNodesInto(x, seeds, ws)
	if err != nil {
		t.Fatalf("reference PredictNodesInto: %v", err)
	}
	return append([]int{}, labels...)
}

func TestServerPredictNodes(t *testing.T) {
	ds, v := testVault(t)
	s, err := New(v, Config{Workers: 1, NodeQuery: nodeQueryCfg(), Features: ds.X})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	seeds := []int{3, 99, 280}
	want := expectedNodeLabels(t, v, ds.X, seeds)
	got, err := s.PredictNodes(seeds)
	if err != nil {
		t.Fatalf("PredictNodes: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	// Duplicate seeds inside one request resolve through the union.
	dup, err := s.PredictNodes([]int{99, 99, 3})
	if err != nil {
		t.Fatalf("duplicate PredictNodes: %v", err)
	}
	if dup[0] != dup[1] {
		t.Fatalf("duplicate seeds answered differently: %v", dup)
	}

	// Error surfaces, by name.
	if _, err := s.PredictNodes([]int{ds.Graph.N()}); !errors.Is(err, core.ErrNodeOutOfRange) {
		t.Fatalf("out of range: err = %v, want core.ErrNodeOutOfRange", err)
	}
	if _, err := s.PredictNodes([]int{1, 2, 3, 4, 5}); !errors.Is(err, subgraph.ErrTooManySeeds) {
		t.Fatalf("oversize: err = %v, want subgraph.ErrTooManySeeds", err)
	}
	if out, err := s.PredictNodes(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty query: out=%v err=%v", out, err)
	}

	st := s.Stats()
	if st.Errors == 0 || st.Completed == 0 {
		t.Fatalf("stats did not record the mixed outcomes: %+v", st)
	}
}

func TestServerPredictNodesDisabled(t *testing.T) {
	_, v := testVault(t)
	s, err := New(v, Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	if _, err := s.PredictNodes([]int{1}); !errors.Is(err, ErrNodeQueriesDisabled) {
		t.Fatalf("err = %v, want ErrNodeQueriesDisabled", err)
	}
}

func TestServerNodeQueryHammerCoalesces(t *testing.T) {
	ds, v := testVault(t)
	s, err := New(v, Config{Workers: 2, MaxBatch: 8, NodeQuery: nodeQueryCfg(), Features: ds.X})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	// Every client queries the same seed set, so whatever requests get
	// coalesced, the union — and therefore the deterministic extraction —
	// is always that set, and every answer must be identical.
	seeds := []int{7, 41}
	want := expectedNodeLabels(t, v, ds.X, seeds)
	const clients, perClient = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				got, err := s.PredictNodes(seeds)
				if err != nil {
					errs <- err
					return
				}
				if got[0] != want[0] || got[1] != want[1] {
					errs <- errors.New("answer diverged under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Completed != clients*perClient {
		t.Fatalf("completed %d, want %d", st.Completed, clients*perClient)
	}
}

// TestServerMixedTrafficOneQueue drives full-graph and node queries
// through the same worker pool concurrently.
func TestServerMixedTrafficOneQueue(t *testing.T) {
	ds, v := testVault(t)
	full, _, err := v.Predict(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(v, Config{Workers: 2, NodeQuery: nodeQueryCfg(), Features: ds.X})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 4; c++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				got, err := s.Predict(ds.X)
				if err != nil {
					errs <- err
					return
				}
				if got[10] != full[10] {
					errs <- errors.New("full-graph answer drifted")
					return
				}
			}
		}()
		go func(c int) {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				if _, err := s.PredictNodes([]int{c * 3}); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServerNodeQueryIsolatesBadSeeds pins the coalescing contract: an
// out-of-range query that lands in the same worker wake-up as valid
// queries must fail alone — the valid queries' shared extraction cannot
// be poisoned by it.
func TestServerNodeQueryIsolatesBadSeeds(t *testing.T) {
	ds, v := testVault(t)
	s, err := New(v, Config{Workers: 1, MaxBatch: 8, NodeQuery: nodeQueryCfg(), Features: ds.X})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				if _, err := s.PredictNodes([]int{c + 1}); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 20; r++ {
			if _, err := s.PredictNodes([]int{-1}); !errors.Is(err, core.ErrNodeOutOfRange) {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("valid query failed (or invalid query mis-errored): %v", err)
	}
}
