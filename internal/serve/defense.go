package serve

import (
	"errors"
	"math"
	"sort"
	"sync"
	"time"
)

// ErrScoresDisabled is returned by PredictScores/PredictNodesScores on a
// server started without Config.ExposeScores. Label-only output is the
// paper's strongest defense (Sec. IV-E); exposing per-class scores is an
// explicit opt-in that widens the attack surface, which the defenses
// below then narrow again.
var ErrScoresDisabled = errors.New("serve: score queries not enabled")

// ErrRateLimited is returned by the API layer when a client exceeds its
// configured query rate or lifetime budget. It is deliberately a distinct
// type from enclave.ErrEPCExhausted: a throttled client is a policy
// decision, not a capacity failure, and the registry must never treat it
// as eviction pressure.
var ErrRateLimited = errors.New("serve: client rate limited")

// RateLimit caps what one client may extract from the serving surface.
// Cost is measured in answered labels (a full-graph query costs the graph
// size, a node query costs its seed count), so the limit prices exactly
// the quantity an extraction attack consumes.
type RateLimit struct {
	// PerSec is the sustained answered-labels-per-second refill rate of
	// each client's token bucket. <= 0 disables the rate component.
	PerSec float64
	// Burst is the bucket capacity in labels. Defaults to
	// max(1, PerSec) when unset. A query costing more than Burst can
	// never be admitted by the rate component.
	Burst int
	// Budget is a lifetime per-client cap on total answered labels.
	// <= 0 disables the budget component. Unlike the token bucket it is
	// clock-independent, so budget-limited configurations are
	// deterministic under replay.
	Budget int
}

// bucket is one client's token-bucket state.
type bucket struct {
	tokens float64
	last   time.Time
	spent  int
}

// limiter is a per-client cost-based token bucket plus lifetime budget.
type limiter struct {
	cfg RateLimit
	now func() time.Time // injectable for deterministic tests

	mu      sync.Mutex
	clients map[string]*bucket
}

func newLimiter(cfg RateLimit) *limiter {
	if cfg.Burst <= 0 {
		cfg.Burst = int(cfg.PerSec)
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &limiter{cfg: cfg, now: time.Now, clients: make(map[string]*bucket)}
}

// allow charges cost answered labels to client, returning ErrRateLimited
// if either the token bucket or the lifetime budget cannot cover it. A
// rejected request charges nothing.
func (l *limiter) allow(client string, cost int) error {
	if cost <= 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.clients[client]
	if b == nil {
		b = &bucket{tokens: float64(l.cfg.Burst), last: now}
		l.clients[client] = b
	}
	if l.cfg.Budget > 0 && b.spent+cost > l.cfg.Budget {
		return ErrRateLimited
	}
	if l.cfg.PerSec > 0 {
		b.tokens += now.Sub(b.last).Seconds() * l.cfg.PerSec
		if b.tokens > float64(l.cfg.Burst) {
			b.tokens = float64(l.cfg.Burst)
		}
		b.last = now
		if b.tokens < float64(cost) {
			return ErrRateLimited
		}
		b.tokens -= float64(cost)
	}
	b.spent += cost
	return nil
}

// defendedRow turns one row of rectifier logits into the posterior row a
// client is allowed to see: softmax, then the configured output defenses.
// The returned slice is freshly allocated and owned by the caller; labels
// are always computed from the raw logits before any defense, so the
// defenses never change which label a query reports.
func (c Config) defendedRow(logits []float64) []float64 {
	row := make([]float64, len(logits))
	softmaxRow(row, logits)
	if c.TopK > 0 && c.TopK < len(row) {
		topKRow(row, c.TopK)
	}
	if c.RoundDigits > 0 {
		roundRow(row, c.RoundDigits)
	}
	return row
}

// softmaxRow writes softmax(logits) into dst (max-subtracted for
// stability).
func softmaxRow(dst, logits []float64) {
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// topKRow zeroes every entry of row outside its k largest. Ties at the
// boundary keep the lower index (stable sort), so the argmax entry — the
// first maximum — always survives.
func topKRow(row []float64, k int) {
	idx := make([]int, len(row))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
	for _, i := range idx[k:] {
		row[i] = 0
	}
}

// roundRow coarsens row to digits decimal digits without ever moving the
// argmax: the top entry rounds up to the grid, every other entry rounds
// down, so floor(other) <= other < top <= ceil(top) keeps the original
// winner on top (ties resolve to the first maximum, matching how labels
// are computed from the raw logits).
func roundRow(row []float64, digits int) {
	unit := math.Pow(10, -float64(digits))
	top := argmaxRow(row)
	for i, v := range row {
		if i == top {
			row[i] = math.Ceil(v/unit) * unit
		} else {
			row[i] = math.Floor(v/unit) * unit
		}
	}
}

// argmaxRow returns the index of the first maximum of row.
func argmaxRow(row []float64) int {
	top := 0
	for i, v := range row {
		if v > row[top] {
			top = i
		}
	}
	return top
}
