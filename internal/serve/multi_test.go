package serve

import (
	"errors"
	"sync"
	"testing"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/registry"
)

// multiFleet deploys two rectifier designs over the shared test backbone
// into one enclave sized to admit both vaults' persistent state plus
// `admit` workspaces of the largest design, and registers them by design
// name. want holds each vault's reference labels from direct Predict.
func multiFleet(t testing.TB, admit int, cfg registry.Config) (*datasets.Dataset, *enclave.Enclave, *registry.Registry, map[string][]int) {
	t.Helper()
	ds, base := testVault(t)
	train := core.TrainConfig{Epochs: 20, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
	recs := map[string]*core.Rectifier{
		"parallel": core.TrainRectifier(ds, base.Backbone, core.Parallel, train),
		"series":   core.TrainRectifier(ds, base.Backbone, core.Series, train),
	}

	// Measure each design's EPC quanta on roomy throwaway deployments.
	persist, maxWS, minWS := int64(0), int64(0), int64(1<<62)
	for name, rec := range recs {
		scratch, err := core.Deploy(base.Backbone, rec, ds.Graph, enclave.DefaultCostModel())
		if err != nil {
			t.Fatalf("scratch deploy %s: %v", name, err)
		}
		ws, err := scratch.Plan(scratch.Nodes())
		if err != nil {
			t.Fatalf("scratch plan %s: %v", name, err)
		}
		persist += scratch.PersistentBytes()
		b := ws.EnclaveBytes()
		if b > maxWS {
			maxWS = b
		}
		if b < minWS {
			minWS = b
		}
		ws.Release()
	}

	cost := enclave.DefaultCostModel()
	cost.EPCBytes = persist + int64(admit)*maxWS + minWS/4
	encl := enclave.New(cost, recs["parallel"].Identity(), recs["series"].Identity())
	reg := registry.New(encl, cfg)
	want := map[string][]int{}
	for name, rec := range recs {
		v, err := core.DeployInto(encl, base.Backbone, rec, ds.Graph)
		if err != nil {
			t.Fatalf("deploy %s: %v", name, err)
		}
		if err := reg.Register(name, v); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
		labels, _, err := v.Predict(ds.X)
		if err != nil {
			t.Fatalf("reference predict %s: %v", name, err)
		}
		want[name] = labels
	}
	return ds, encl, reg, want
}

func TestMultiServerRoutesByVaultID(t *testing.T) {
	ds, _, reg, want := multiFleet(t, 4, registry.Config{})
	defer reg.Close()
	s := NewMulti(reg, Config{Workers: 2})
	defer s.Close()

	for name, ref := range want {
		got, err := s.Predict(name, ds.X)
		if err != nil {
			t.Fatalf("Predict(%s): %v", name, err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s label[%d] = %d, want %d", name, i, got[i], ref[i])
			}
		}
	}
	if _, err := s.Predict("nope", ds.X); !errors.Is(err, registry.ErrUnknownVault) {
		t.Fatalf("unknown vault: %v, want registry.ErrUnknownVault", err)
	}
	if st := s.Stats(); st.Errors != 1 || st.Completed != 2 {
		t.Fatalf("stats errors/completed = %d/%d, want 1/2", st.Errors, st.Completed)
	}
}

// TestMultiServerEvictionChurnHammer is the serving-level -race test for
// the EPC scheduler: concurrent clients alternate between two vaults while
// the enclave admits only one workspace, forcing plan/evict churn under
// load. After the server closes, the enclave must be back at its
// deploy-time EPC baseline.
func TestMultiServerEvictionChurnHammer(t *testing.T) {
	ds, encl, reg, want := multiFleet(t, 1, registry.Config{WorkspacesPerVault: 1})
	baseline := encl.EPCUsed() // persistent state only: nothing planned yet
	s := NewMulti(reg, Config{Workers: 3, MaxBatch: 4})

	names := []string{"parallel", "series"}
	const clients, perClient = 8, 4
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				name := names[(c+r)%len(names)]
				got, err := s.Predict(name, ds.X)
				if err != nil {
					errCh <- err
					return
				}
				for i, w := range want[name] {
					if got[i] != w {
						errCh <- errors.New("routed result diverged from direct Predict of " + name)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if used, limit := encl.EPCUsed(), encl.EPCLimit(); used > limit {
		t.Fatalf("EPC %d above capacity %d", used, limit)
	}
	rst := reg.Stats()
	if rst.Requests == 0 || rst.Plans < 2 || rst.Evictions == 0 {
		t.Fatalf("expected plan/evict churn, got requests=%d plans=%d evictions=%d",
			rst.Requests, rst.Plans, rst.Evictions)
	}
	st := s.Stats()
	if st.Completed != clients*perClient || st.Errors != 0 {
		t.Fatalf("completed/errors = %d/%d, want %d/0", st.Completed, st.Errors, clients*perClient)
	}

	s.Close()
	reg.Close()
	if got := encl.EPCUsed(); got != baseline {
		t.Fatalf("EPC after close %d, want deploy-time baseline %d", got, baseline)
	}
}

func TestMultiServerCloseRejectsButRegistrySurvives(t *testing.T) {
	ds, _, reg, _ := multiFleet(t, 4, registry.Config{})
	defer reg.Close()
	s := NewMulti(reg, Config{Workers: 1})
	if _, err := s.Predict("parallel", ds.X); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Predict("parallel", ds.X); !errors.Is(err, ErrClosed) {
		t.Fatalf("Predict after close: %v, want ErrClosed", err)
	}
	// The registry is caller-owned: a new front-end serves immediately.
	s2 := NewMulti(reg, Config{Workers: 1})
	defer s2.Close()
	if _, err := s2.Predict("series", ds.X); err != nil {
		t.Fatalf("fresh server over surviving registry: %v", err)
	}
}

func TestMultiServerPredictNodes(t *testing.T) {
	nqCfg := *nodeQueryCfg()
	ds, _, reg, _ := multiFleet(t, 3, registry.Config{NodeQuery: &nqCfg})
	defer reg.Close()
	if err := reg.EnableNodeQueries("parallel", ds.X); err != nil {
		t.Fatalf("EnableNodeQueries: %v", err)
	}
	srv := NewMulti(reg, Config{Workers: 1})
	defer srv.Close()

	seeds := []int{12, 77}
	want := expectedNodeLabels(t, reg.Vault("parallel"), ds.X, seeds)
	got, err := srv.PredictNodes("parallel", seeds)
	if err != nil {
		t.Fatalf("PredictNodes: %v", err)
	}
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("labels %v, want %v", got, want)
	}

	// The series vault never enabled node queries: named error.
	if _, err := srv.PredictNodes("series", seeds); !errors.Is(err, registry.ErrNodeQueriesDisabled) {
		t.Fatalf("series: err = %v, want registry.ErrNodeQueriesDisabled", err)
	}
	// Unknown vault IDs surface as usual.
	if _, err := srv.PredictNodes("nope", seeds); !errors.Is(err, registry.ErrUnknownVault) {
		t.Fatalf("unknown: err = %v, want registry.ErrUnknownVault", err)
	}
	// Full-graph traffic still flows beside node queries.
	if _, err := srv.Predict("series", ds.X); err != nil {
		t.Fatalf("full-graph Predict: %v", err)
	}

	st := reg.Stats()
	for _, vs := range st.PerVault {
		if vs.ID == "parallel" && vs.NodeQueries == 0 {
			t.Fatalf("registry recorded no node queries: %+v", vs)
		}
	}
}
