package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gnnvault/internal/enclave"
	"gnnvault/internal/mat"
	"gnnvault/internal/obs"
	"gnnvault/internal/registry"
)

// chaosConfig is the fast-recovery serving config the chaos tests share:
// millisecond backoff so outages resolve inside the test budget, a
// deterministic seed so reruns replay the same jitter schedule.
func chaosConfig(x *mat.Matrix) Config {
	nq := registry.NodeQueryConfig{}
	return Config{
		Workers:         2,
		MaxBatch:        4,
		NodeQuery:       &nq,
		Features:        x,
		MaxRetries:      2,
		RecoveryBackoff: time.Millisecond,
		Seed:            7,
	}
}

// TestShardedBreakerTripAndRecover is the deterministic fault/recovery
// walk: a fault plan kills one shard's enclave mid-fan-out, the client
// sees the attributed ErrEnclaveLost, the breaker trips and the
// background loop re-seals and rejoins the shard, after which serving is
// bit-identical to the pre-fault baseline and the first success closes
// the breaker. Degraded serving is pinned via an administrative outage:
// node queries on healthy shards keep answering and count as degraded.
func TestShardedBreakerTripAndRecover(t *testing.T) {
	ds, ref, fleet := testFreshFleet(t, 3)
	want, _, err := ref.Predict(ds.X)
	if err != nil {
		t.Fatalf("reference Predict: %v", err)
	}
	ring := obs.NewRing(64)
	cfg := chaosConfig(ds.X)
	cfg.Trace = ring
	s, err := NewSharded(fleet, cfg)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer s.Close()
	if _, err := s.Predict(ds.X); err != nil {
		t.Fatalf("baseline Predict: %v", err)
	}

	// Administrative outage (no breaker, no auto-recovery): healthy-shard
	// node queries keep serving and count as degraded.
	s.SetShardAvailable(2, false)
	if _, err := s.PredictNodes([]int{0}); err != nil {
		t.Fatalf("node query on healthy shard during outage: %v", err)
	}
	if got := s.Stats().Degraded; got == 0 {
		t.Fatal("degraded counter did not count the outage-time answer")
	}
	if _, err := s.Predict(ds.X); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("full-graph during administrative outage: %v, want ErrShardUnavailable", err)
	}
	if st := s.ShardStats(); st.Restarts[2] != 0 {
		t.Fatal("administrative outage must not trigger the recovery loop")
	}
	s.SetShardAvailable(2, true)

	// Chaos: shard 1's next ECALL aborts, losing the enclave for good.
	fleet.Shard(1).Enclave.SetFaultPlan(&enclave.FaultPlan{AbortECalls: []int64{0}})
	if _, err := s.Predict(ds.X); !errors.Is(err, enclave.ErrEnclaveLost) {
		t.Fatalf("faulted Predict: %v, want ErrEnclaveLost", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := s.ShardStats()
		if st.Restarts[1] >= 1 && st.Available[1] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 1 never recovered: %+v", s.ShardStats())
		}
		time.Sleep(time.Millisecond)
	}
	got, err := s.Predict(ds.X)
	if err != nil {
		t.Fatalf("post-recovery Predict: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-recovery label[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if st := s.ShardStats(); st.Breaker[1] != breakerClosed {
		t.Fatalf("breaker[1] = %d after a served success, want closed", st.Breaker[1])
	}
	var sawFault, sawRecover bool
	for _, sp := range ring.Last(0) {
		sawFault = sawFault || (sp.Kind == obs.SpanFault && sp.Rows == 1)
		sawRecover = sawRecover || (sp.Kind == obs.SpanRecover && sp.Rows == 1)
	}
	if !sawFault || !sawRecover {
		t.Fatalf("flight recorder missing fault/recover events (fault %v, recover %v)", sawFault, sawRecover)
	}
}

// TestShardedDeadline pins deadline-bounded serving: with a deadline no
// request can meet, both endpoints fail with context.DeadlineExceeded
// (not a hang, not a shard fault), the deadline counter counts them, no
// enclave is blamed, and the accounting still reconciles.
func TestShardedDeadline(t *testing.T) {
	ds, _, fleet := testShardedVault(t)
	cfg := chaosConfig(ds.X)
	cfg.MaxRetries = 0
	cfg.Deadline = time.Nanosecond
	s, err := NewSharded(fleet, cfg)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer s.Close()
	if _, err := s.Predict(ds.X); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Predict under 1ns deadline: %v, want DeadlineExceeded", err)
	}
	if _, err := s.PredictNodes([]int{0}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("PredictNodes under 1ns deadline: %v, want DeadlineExceeded", err)
	}
	st := s.Stats()
	if st.DeadlineExceeded != 2 {
		t.Fatalf("DeadlineExceeded = %d, want 2", st.DeadlineExceeded)
	}
	if st.Requests != st.Completed+st.Errors {
		t.Fatalf("counters do not reconcile: %d requests, %d completed + %d errors", st.Requests, st.Completed, st.Errors)
	}
	for sh, tripped := range s.ShardStats().Breaker {
		if tripped != breakerClosed {
			t.Fatalf("deadline failures tripped shard %d's breaker", sh)
		}
	}
}

// TestSetShardAvailableMidPass is the regression for the availability
// flip racing an in-flight fan-out: the pass must end in a clean result
// or a clean ErrShardUnavailable — never a hung halo barrier (the test
// itself would time out) and never a torn read.
func TestSetShardAvailableMidPass(t *testing.T) {
	ds, ref, fleet := testFreshFleet(t, 3)
	want, _, err := ref.Predict(ds.X)
	if err != nil {
		t.Fatalf("reference Predict: %v", err)
	}
	s, err := NewSharded(fleet, chaosConfig(ds.X))
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // the flipper: takes shard 1 down and up as fast as it can
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.SetShardAvailable(1, false)
			s.SetShardAvailable(1, true)
		}
	}()
	for i := 0; i < 40; i++ {
		got, err := s.Predict(ds.X)
		if err != nil {
			if !errors.Is(err, ErrShardUnavailable) {
				close(stop)
				t.Fatalf("mid-pass flip produced %v, want nil or ErrShardUnavailable", err)
			}
			continue
		}
		for j := range want {
			if got[j] != want[j] {
				close(stop)
				t.Fatalf("pass %d label[%d] = %d, want %d (torn read under flip)", i, j, got[j], want[j])
			}
		}
	}
	close(stop)
	wg.Wait()
	if _, err := s.Predict(ds.X); err != nil {
		t.Fatalf("Predict after the flipper settled: %v", err)
	}
}

// TestShardedHealthEndpoints pins the probe contract: /healthz stays 200
// through an outage (degraded is not dead), /readyz drops to 503 with
// Retry-After and the per-shard detail while any shard is out, and both
// report 200 on a healthy fleet.
func TestShardedHealthEndpoints(t *testing.T) {
	ds, _, fleet := testShardedVault(t)
	s, err := NewSharded(fleet, Config{Workers: 1})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer s.Close()
	api := NewShardedAPI(s, APIConfig{
		Vaults:   []APIVault{{ID: "cora/parallel", Dataset: "cora", Design: "parallel", Nodes: fleet.Nodes()}},
		Features: func(string) *mat.Matrix { return ds.X },
	})
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	check := func(path string, want int, wantRetry bool) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close() //nolint:errcheck
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
		if got := resp.Header.Get("Retry-After") != ""; got != wantRetry {
			t.Fatalf("GET %s: Retry-After present = %v, want %v", path, got, wantRetry)
		}
		raw, _ := io.ReadAll(resp.Body)
		return string(raw)
	}
	check("/healthz", http.StatusOK, false)
	body := check("/readyz", http.StatusOK, false)
	if !strings.Contains(body, `"ready"`) {
		t.Fatalf("/readyz healthy body = %s", body)
	}

	s.SetShardAvailable(1, false)
	check("/healthz", http.StatusOK, false)
	body = check("/readyz", http.StatusServiceUnavailable, true)
	if !strings.Contains(body, `"degraded"`) || !strings.Contains(body, `"available":[true,false,true]`) {
		t.Fatalf("/readyz degraded body = %s", body)
	}
	s.SetShardAvailable(1, true)
	check("/readyz", http.StatusOK, false)
}

// TestShardedChaosHammer is the chaos soak: seeded random enclave kills
// (through fault plans and outright loss) land on a 3-shard fleet while
// clients hammer /predict, /predict_nodes and /metrics over HTTP. The
// invariants: no deadlock (the test finishes), every response is either
// a correct 200 — full-graph answers must match the single-enclave
// reference bit for bit — or a retryable 503 with Retry-After, the
// worker-pool accounting reconciles exactly, and once the chaos stops
// the fleet recovers to serve bit-identical answers again.
func TestShardedChaosHammer(t *testing.T) {
	ds, ref, fleet := testFreshFleet(t, 3)
	want, _, err := ref.Predict(ds.X)
	if err != nil {
		t.Fatalf("reference Predict: %v", err)
	}
	s, err := NewSharded(fleet, chaosConfig(ds.X))
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	defer s.Close()
	api := NewShardedAPI(s, APIConfig{
		Vaults:      []APIVault{{ID: "cora/parallel", Dataset: "cora", Design: "parallel", Nodes: fleet.Nodes()}},
		Features:    func(string) *mat.Matrix { return ds.X },
		NodeQueries: true,
	})
	hs := httptest.NewServer(api.Handler())
	defer hs.Close()

	const clients, perClient, kills = 6, 6, 4
	n := fleet.Nodes()
	errCh := make(chan error, clients+1)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				switch c % 3 {
				case 0: // full-graph over HTTP; 200 bodies must be bit-identical
					resp, err := http.Post(hs.URL+"/predict", "application/json",
						strings.NewReader(`{"vault":"cora/parallel"}`))
					if err != nil {
						errCh <- err
						return
					}
					switch resp.StatusCode {
					case http.StatusOK:
						var pr apiResponse
						if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
							errCh <- err
						} else {
							for i := range want {
								if pr.Labels[i] != want[i] {
									errCh <- fmt.Errorf("mid-chaos answer diverged at node %d", i)
									break
								}
							}
						}
					case http.StatusServiceUnavailable:
						if resp.Header.Get("Retry-After") == "" {
							errCh <- errors.New("503 without Retry-After")
						}
					default:
						errCh <- fmt.Errorf("unexpected /predict status %d", resp.StatusCode)
					}
					resp.Body.Close()
				case 1: // node queries spread across the shards
					seed := (c*perClient + r*97) % n
					resp, err := http.Post(hs.URL+"/predict_nodes", "application/json",
						strings.NewReader(fmt.Sprintf(`{"vault":"cora/parallel","nodes":[%d]}`, seed)))
					if err != nil {
						errCh <- err
						return
					}
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
						errCh <- fmt.Errorf("unexpected /predict_nodes status %d", resp.StatusCode)
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				default: // metrics scrapes race the counters and swaps
					resp, err := http.Get(hs.URL + "/metrics")
					if err != nil {
						errCh <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errCh <- fmt.Errorf("/metrics status %d", resp.StatusCode)
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // the chaos: seeded kills, half via fault plan, half outright
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		for k := 0; k < kills; k++ {
			time.Sleep(time.Duration(2+rng.Intn(8)) * time.Millisecond)
			sh := rng.Intn(fleet.Shards())
			if k%2 == 0 {
				fleet.Shard(sh).Enclave.SetFaultPlan(&enclave.FaultPlan{AbortRate: 1, Seed: int64(k + 1)})
			} else {
				fleet.Shard(sh).Enclave.MarkLost()
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Chaos is over; the fleet must converge back to healthy and serve
	// bit-identical answers. A kill can land after the last request, so
	// probe until the recovery loops settle.
	deadline := time.Now().Add(20 * time.Second)
	for {
		got, err := s.Predict(ds.X)
		if err == nil {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("post-chaos label[%d] = %d, want %d", i, got[i], want[i])
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never recovered from chaos: %v (%+v)", err, s.ShardStats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := s.Stats()
	if st.Requests != st.Completed+st.Errors {
		t.Fatalf("counters do not reconcile: %d requests, %d completed + %d errors",
			st.Requests, st.Completed, st.Errors)
	}
	var restarts uint64
	for _, r := range s.ShardStats().Restarts {
		restarts += r
	}
	if restarts == 0 {
		t.Fatal("chaos killed shards but no recovery was recorded")
	}
}
