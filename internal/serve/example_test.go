package serve_test

import (
	"fmt"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/serve"
	"gnnvault/internal/substitute"
)

// ExampleServer deploys one vault and answers label queries through the
// batched worker pool — the single-tenant serving path.
func ExampleServer() {
	ds := datasets.Load("cora")
	cfg := core.TrainConfig{Epochs: 3, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
	spec := core.SpecForDataset("cora")
	bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), cfg)
	rec := core.TrainRectifier(ds, bb, core.Parallel, cfg)
	vault, err := core.Deploy(bb, rec, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		panic(err)
	}

	srv, err := serve.New(vault, serve.Config{Workers: 2})
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	labels, err := srv.Predict(ds.X)
	if err != nil {
		panic(err)
	}
	st := srv.Stats()
	fmt.Println("one label per node:", len(labels) == vault.Nodes())
	fmt.Printf("completed=%d errors=%d\n", st.Completed, st.Errors)
	// Output:
	// one label per node: true
	// completed=1 errors=0
}
