package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"gnnvault/internal/datasets"
	"gnnvault/internal/mat"
	"gnnvault/internal/registry"
)

// testAPI stands up the full HTTP surface over a two-vault fleet with
// node queries enabled on "parallel".
func testAPI(t *testing.T, scfg Config, limit *RateLimit) (*datasets.Dataset, *API, *MultiServer, *registry.Registry) {
	t.Helper()
	nqCfg := *nodeQueryCfg()
	ds, _, reg, _ := multiFleet(t, 4, registry.Config{NodeQuery: &nqCfg})
	if err := reg.EnableNodeQueries("parallel", ds.X); err != nil {
		reg.Close()
		t.Fatalf("EnableNodeQueries: %v", err)
	}
	srv := NewMulti(reg, scfg)
	api := NewAPI(srv, reg, APIConfig{
		Vaults: []APIVault{
			{ID: "parallel", Dataset: "cora", Design: "parallel", Nodes: ds.Graph.N()},
			{ID: "series", Dataset: "cora", Design: "series", Nodes: ds.Graph.N()},
		},
		Features:    func(string) *mat.Matrix { return ds.X },
		NodeQueries: true,
		Limit:       limit,
	})
	t.Cleanup(func() {
		srv.Close()
		reg.Close()
	})
	return ds, api, srv, reg
}

// postJSON drives one predict endpoint and decodes the response.
func postJSON(t *testing.T, ts *httptest.Server, path, client string, body map[string]any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("X-Client", client)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	defer resp.Body.Close() //nolint:errcheck
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

// TestAPIStatusMapping pins every error class to its HTTP status: 404 for
// unknown vaults, 400 for malformed queries, 403 for score queries
// against a label-only fleet, 429 for throttled clients, 501 for node
// queries on a vault without them.
func TestAPIStatusMapping(t *testing.T) {
	_, api, _, _ := testAPI(t, Config{Workers: 1}, &RateLimit{Budget: 40})
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	if code, _ := postJSON(t, ts, "/predict", "c1", map[string]any{"vault": "nope", "nodes": []int{0}}); code != http.StatusNotFound {
		t.Fatalf("unknown vault: status %d, want 404", code)
	}
	if code, _ := postJSON(t, ts, "/predict", "c1", map[string]any{"vault": "parallel", "nodes": []int{-1}}); code != http.StatusBadRequest {
		t.Fatalf("out-of-range node: status %d, want 400", code)
	}
	if code, _ := postJSON(t, ts, "/predict_nodes", "c1", map[string]any{"vault": "parallel"}); code != http.StatusBadRequest {
		t.Fatalf("empty nodes: status %d, want 400", code)
	}
	if code, _ := postJSON(t, ts, "/predict", "c1", map[string]any{"vault": "parallel", "nodes": []int{0}, "scores": true}); code != http.StatusForbidden {
		t.Fatalf("scores on label-only fleet: status %d, want 403", code)
	}
	// series never enabled node queries at the registry; the fleet flag is
	// on, so the failure surfaces from the registry as 501.
	if code, _ := postJSON(t, ts, "/predict_nodes", "c1", map[string]any{"vault": "series", "nodes": []int{1, 2}}); code != http.StatusNotImplemented {
		t.Fatalf("node query without registry enablement: status %d, want 501", code)
	}

	// Budget 40: a 30-label query fits, the next 30 is throttled, and a
	// different client is unaffected.
	nodes := make([]int, 30)
	for i := range nodes {
		nodes[i] = i
	}
	if code, _ := postJSON(t, ts, "/predict", "c1", map[string]any{"vault": "parallel", "nodes": nodes}); code != http.StatusOK {
		t.Fatalf("within budget: status %d, want 200", code)
	}
	if code, _ := postJSON(t, ts, "/predict", "c1", map[string]any{"vault": "parallel", "nodes": nodes}); code != http.StatusTooManyRequests {
		t.Fatalf("over budget: status %d, want 429", code)
	}
	if code, _ := postJSON(t, ts, "/predict", "c2", map[string]any{"vault": "parallel", "nodes": nodes}); code != http.StatusOK {
		t.Fatalf("fresh client: status %d, want 200", code)
	}
}

// TestAPIRateLimitTyped checks the programmatic surface returns the
// sentinel the harness keys on.
func TestAPIRateLimitTyped(t *testing.T) {
	_, api, _, _ := testAPI(t, Config{Workers: 1}, &RateLimit{Budget: 5})
	if _, err := api.Predict("atk", "parallel", []int{0, 1, 2, 3, 4}); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if _, err := api.Predict("atk", "parallel", []int{5}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over budget: %v, want ErrRateLimited", err)
	}
}

// TestHTTPHammer is the -race regression test for the HTTP layer:
// concurrent /predict, /predict_nodes and /stats clients against one
// MultiServer. Every request must complete (no drops), every predict
// answer must match the reference labels, and the serving counters must
// reconcile: requests == completed + errors with zero errors.
func TestHTTPHammer(t *testing.T) {
	ds, api, srv, _ := testAPI(t, Config{Workers: 3, MaxBatch: 4}, nil)
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	ref, err := srv.Predict("parallel", ds.X)
	if err != nil {
		t.Fatalf("reference Predict: %v", err)
	}
	before := srv.Stats()

	const clients, perClient = 8, 6
	errCh := make(chan error, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				switch r % 3 {
				case 0: // full-graph with node selection
					nodes := []int{(c*31 + r) % ds.Graph.N(), (c*17 + r*7 + 1) % ds.Graph.N()}
					code, out := postJSON(t, ts, "/predict", fmt.Sprintf("c%d", c),
						map[string]any{"vault": "parallel", "nodes": nodes})
					if code != http.StatusOK {
						errCh <- fmt.Errorf("predict status %d: %v", code, out)
						return
					}
					labels := out["labels"].([]any)
					for i, n := range nodes {
						if int(labels[i].(float64)) != ref[n] {
							errCh <- fmt.Errorf("label[%d] diverged", n)
							return
						}
					}
				case 1: // sampled subgraph path
					nodes := []int{(c*13 + r*3) % ds.Graph.N(), (c*7 + r*11 + 2) % ds.Graph.N()}
					if nodes[0] == nodes[1] {
						nodes[1] = (nodes[1] + 1) % ds.Graph.N()
					}
					code, out := postJSON(t, ts, "/predict_nodes", fmt.Sprintf("c%d", c),
						map[string]any{"vault": "parallel", "nodes": nodes})
					if code != http.StatusOK {
						errCh <- fmt.Errorf("predict_nodes status %d: %v", code, out)
						return
					}
				case 2: // stats beside traffic
					resp, err := ts.Client().Get(ts.URL + "/stats")
					if err != nil {
						errCh <- err
						return
					}
					resp.Body.Close() //nolint:errcheck
					if resp.StatusCode != http.StatusOK {
						errCh <- fmt.Errorf("stats status %d", resp.StatusCode)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := srv.Stats()
	issued := st.Requests - before.Requests
	answered := (st.Completed + st.Errors) - (before.Completed + before.Errors)
	if issued != answered {
		t.Fatalf("dropped requests: issued %d, answered %d", issued, answered)
	}
	if st.Errors != before.Errors {
		t.Fatalf("hammer produced %d serving errors", st.Errors-before.Errors)
	}
	wantServed := uint64(clients * perClient * 2 / 3) // /stats never hits the worker pool
	if issued != wantServed {
		t.Fatalf("served %d inference requests, want %d", issued, wantServed)
	}
}
