// Package serve is the concurrent batched inference front-end over a
// deployed vault: the paper's edge device answering a stream of label
// queries. A Server owns a pool of workers, each holding its own
// pre-planned core.Workspace (so the hot path allocates nothing), pulls
// requests off a bounded queue, micro-batches whatever is waiting, and
// maintains throughput and latency counters.
//
// Micro-batching here coalesces queued requests into one worker wake-up:
// GNN inference is full-graph, so requests cannot be fused into a wider
// matrix, but draining the queue in batches amortises scheduling and keeps
// each worker's workspace cache-hot across consecutive requests.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/mat"
)

// ErrClosed is returned by Predict after Close.
var ErrClosed = errors.New("serve: server closed")

// Config tunes the worker pool.
type Config struct {
	// Workers is the number of inference workers, each with its own
	// planned workspace (and therefore its own EPC charge). Default 2.
	Workers int
	// MaxBatch caps how many queued requests one worker drains per
	// wake-up. Default 8.
	MaxBatch int
	// QueueDepth bounds the request queue; Predict blocks when it is
	// full (backpressure). Default Workers·MaxBatch·2.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = c.Workers * c.MaxBatch * 2
	}
	return c
}

// Stats is a snapshot of the server's counters since New.
type Stats struct {
	Requests  uint64 // accepted by Predict
	Completed uint64 // answered successfully
	Errors    uint64 // answered with an error
	Batches   uint64 // worker wake-ups (micro-batches)

	AvgBatch   float64       // Completed+Errors per batch
	AvgLatency time.Duration // mean enqueue→answer time
	MaxLatency time.Duration
	Throughput float64 // completed requests per second of uptime
	Uptime     time.Duration
}

type request struct {
	x    *mat.Matrix
	out  []int
	err  error
	enq  time.Time
	done chan struct{}
}

// Server is a pool of inference workers over one deployed vault.
type Server struct {
	vault *core.Vault
	cfg   Config
	reqs  chan *request
	pool  sync.Pool

	// sendMu lets Close wait out in-flight Predict sends before closing
	// the queue channel.
	sendMu sync.RWMutex
	closed atomic.Bool
	wg     sync.WaitGroup
	start  time.Time

	requests  atomic.Uint64
	completed atomic.Uint64
	errors    atomic.Uint64
	batches   atomic.Uint64
	latencyNs atomic.Int64
	maxLatNs  atomic.Int64
}

// New plans one workspace per worker against v and starts the pool. It
// fails — releasing anything it planned — if the combined workspaces do not
// fit the enclave's EPC, which is the real bound on worker concurrency for
// an enclave-backed deployment.
func New(v *core.Vault, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	rows := v.Nodes()
	workspaces := make([]*core.Workspace, 0, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		ws, err := v.Plan(rows)
		if err != nil {
			for _, w := range workspaces {
				w.Release()
			}
			return nil, fmt.Errorf("serve: planning workspace for worker %d/%d: %w", i+1, cfg.Workers, err)
		}
		workspaces = append(workspaces, ws)
	}
	s := &Server{
		vault: v,
		cfg:   cfg,
		reqs:  make(chan *request, cfg.QueueDepth),
		start: time.Now(),
	}
	s.pool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	for _, ws := range workspaces {
		s.wg.Add(1)
		go s.worker(ws)
	}
	return s, nil
}

// Predict enqueues one inference over x and blocks until a worker answers.
// The returned slice is freshly allocated and owned by the caller. Safe for
// concurrent use; blocks for backpressure when the queue is full.
func (s *Server) Predict(x *mat.Matrix) ([]int, error) {
	req := s.pool.Get().(*request)
	req.x = x
	req.out = make([]int, x.Rows)
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	out, err := req.out, req.err
	req.x, req.out, req.err = nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// worker drains the queue in micro-batches, answering every request with
// its own pre-planned workspace.
func (s *Server) worker(ws *core.Workspace) {
	defer s.wg.Done()
	defer ws.Release()
	batch := make([]*request, 0, s.cfg.MaxBatch)
	for {
		req, ok := <-s.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], req)
		// Coalesce whatever else is already queued, up to MaxBatch.
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		s.batches.Add(1)
		for _, r := range batch {
			s.answer(r, ws)
		}
	}
}

func (s *Server) answer(r *request, ws *core.Workspace) {
	labels, _, err := s.vault.PredictInto(r.x, ws)
	if err != nil {
		r.err = err
		s.errors.Add(1)
	} else {
		copy(r.out, labels) // the workspace's label buffer is reused
		s.completed.Add(1)
	}
	lat := time.Since(r.enq).Nanoseconds()
	s.latencyNs.Add(lat)
	for {
		cur := s.maxLatNs.Load()
		if lat <= cur || s.maxLatNs.CompareAndSwap(cur, lat) {
			break
		}
	}
	r.done <- struct{}{}
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:   s.requests.Load(),
		Completed:  s.completed.Load(),
		Errors:     s.errors.Load(),
		Batches:    s.batches.Load(),
		MaxLatency: time.Duration(s.maxLatNs.Load()),
		Uptime:     time.Since(s.start),
	}
	answered := st.Completed + st.Errors
	if answered > 0 {
		st.AvgLatency = time.Duration(s.latencyNs.Load() / int64(answered))
	}
	if st.Batches > 0 {
		st.AvgBatch = float64(answered) / float64(st.Batches)
	}
	if sec := st.Uptime.Seconds(); sec > 0 {
		st.Throughput = float64(st.Completed) / sec
	}
	return st
}

// Close stops accepting requests, waits for queued work to finish, and
// releases every worker workspace (returning their EPC to the enclave).
// Idempotent.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		s.wg.Wait()
		return
	}
	// Wait out in-flight Predict sends, then close the queue so workers
	// drain and exit.
	s.sendMu.Lock()
	close(s.reqs)
	s.sendMu.Unlock()
	s.wg.Wait()
}
