// Package serve is the concurrent batched inference front-end of the
// simulated edge device: a pool of workers answering a stream of label
// queries over deployed vaults.
//
// Two front-ends share the worker machinery. Server is the single-tenant
// form — one vault, one pre-planned core.Workspace per worker, so the hot
// path allocates nothing. MultiServer is the multi-tenant form: requests
// carry a vault ID and the shared worker pool routes them across a
// registry.Registry, which plans workspaces lazily and evicts
// least-recently-served vaults when the enclave's EPC cannot hold every
// tenant (see DESIGN.md, "Multi-vault registry and EPC scheduling").
//
// Micro-batching here coalesces queued requests into one worker wake-up:
// GNN inference is full-graph, so requests cannot be fused into a wider
// matrix, but draining the queue in batches amortises scheduling and keeps
// each worker's workspace cache-hot across consecutive requests. The
// multi-vault worker additionally serves consecutive same-vault requests
// in a drained batch under one workspace checkout.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/mat"
)

// ErrClosed is returned by Predict after Close.
var ErrClosed = errors.New("serve: server closed")

// Config tunes the worker pool.
type Config struct {
	// Workers is the number of inference workers, each with its own
	// planned workspace (and therefore its own EPC charge). Default 2.
	Workers int
	// MaxBatch caps how many queued requests one worker drains per
	// wake-up. Default 8.
	MaxBatch int
	// QueueDepth bounds the request queue; Predict blocks when it is
	// full (backpressure). Default Workers·MaxBatch·2.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = c.Workers * c.MaxBatch * 2
	}
	return c
}

// Stats is a snapshot of the server's counters since New.
type Stats struct {
	Requests  uint64 // accepted by Predict
	Completed uint64 // answered successfully
	Errors    uint64 // answered with an error
	Batches   uint64 // worker wake-ups (micro-batches)

	AvgBatch   float64       // Completed+Errors per batch
	AvgLatency time.Duration // mean enqueue→answer time
	MaxLatency time.Duration
	Throughput float64 // completed requests per second of uptime
	Uptime     time.Duration
}

type request struct {
	x    *mat.Matrix
	out  []int
	err  error
	enq  time.Time
	done chan struct{}
}

// counters aggregates the serving statistics shared by Server and
// MultiServer.
type counters struct {
	requests  atomic.Uint64
	completed atomic.Uint64
	errors    atomic.Uint64
	batches   atomic.Uint64
	latencyNs atomic.Int64
	maxLatNs  atomic.Int64
}

// observe records one answered request: its outcome and its
// enqueue→answer latency.
func (c *counters) observe(err error, enq time.Time) {
	if err != nil {
		c.errors.Add(1)
	} else {
		c.completed.Add(1)
	}
	lat := time.Since(enq).Nanoseconds()
	c.latencyNs.Add(lat)
	for {
		cur := c.maxLatNs.Load()
		if lat <= cur || c.maxLatNs.CompareAndSwap(cur, lat) {
			break
		}
	}
}

// snapshot derives a Stats from the counters and the server start time.
func (c *counters) snapshot(start time.Time) Stats {
	st := Stats{
		Requests:   c.requests.Load(),
		Completed:  c.completed.Load(),
		Errors:     c.errors.Load(),
		Batches:    c.batches.Load(),
		MaxLatency: time.Duration(c.maxLatNs.Load()),
		Uptime:     time.Since(start),
	}
	answered := st.Completed + st.Errors
	if answered > 0 {
		st.AvgLatency = time.Duration(c.latencyNs.Load() / int64(answered))
	}
	if st.Batches > 0 {
		st.AvgBatch = float64(answered) / float64(st.Batches)
	}
	if sec := st.Uptime.Seconds(); sec > 0 {
		st.Throughput = float64(st.Completed) / sec
	}
	return st
}

// Server is a pool of inference workers over one deployed vault.
type Server struct {
	vault *core.Vault
	cfg   Config
	reqs  chan *request
	pool  sync.Pool

	// sendMu lets Close wait out in-flight Predict sends before closing
	// the queue channel.
	sendMu sync.RWMutex
	closed atomic.Bool
	wg     sync.WaitGroup
	start  time.Time

	counters
}

// New plans one workspace per worker against v and starts the pool. It
// fails — releasing anything it planned — if the combined workspaces do not
// fit the enclave's EPC, which is the real bound on worker concurrency for
// an enclave-backed deployment.
func New(v *core.Vault, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	rows := v.Nodes()
	workspaces := make([]*core.Workspace, 0, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		ws, err := v.Plan(rows)
		if err != nil {
			for _, w := range workspaces {
				w.Release()
			}
			return nil, fmt.Errorf("serve: planning workspace for worker %d/%d: %w", i+1, cfg.Workers, err)
		}
		workspaces = append(workspaces, ws)
	}
	s := &Server{
		vault: v,
		cfg:   cfg,
		reqs:  make(chan *request, cfg.QueueDepth),
		start: time.Now(),
	}
	s.pool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	for _, ws := range workspaces {
		s.wg.Add(1)
		go s.worker(ws)
	}
	return s, nil
}

// Predict enqueues one inference over x and blocks until a worker answers.
// The returned slice is freshly allocated and owned by the caller. Safe for
// concurrent use; blocks for backpressure when the queue is full.
func (s *Server) Predict(x *mat.Matrix) ([]int, error) {
	req := s.pool.Get().(*request)
	req.x = x
	req.out = make([]int, x.Rows)
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	out, err := req.out, req.err
	req.x, req.out, req.err = nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// worker drains the queue in micro-batches, answering every request with
// its own pre-planned workspace.
func (s *Server) worker(ws *core.Workspace) {
	defer s.wg.Done()
	defer ws.Release()
	batch := make([]*request, 0, s.cfg.MaxBatch)
	for {
		req, ok := <-s.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], req)
		// Coalesce whatever else is already queued, up to MaxBatch.
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		s.batches.Add(1)
		for _, r := range batch {
			s.answer(r, ws)
		}
	}
}

func (s *Server) answer(r *request, ws *core.Workspace) {
	labels, _, err := s.vault.PredictInto(r.x, ws)
	if err != nil {
		r.err = err
	} else {
		copy(r.out, labels) // the workspace's label buffer is reused
	}
	s.observe(err, r.enq)
	r.done <- struct{}{}
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	return s.snapshot(s.start)
}

// Close stops accepting requests, waits for queued work to finish, and
// releases every worker workspace (returning their EPC to the enclave).
// Idempotent.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		s.wg.Wait()
		return
	}
	// Wait out in-flight Predict sends, then close the queue so workers
	// drain and exit.
	s.sendMu.Lock()
	close(s.reqs)
	s.sendMu.Unlock()
	s.wg.Wait()
}
