// Package serve is the concurrent batched inference front-end of the
// simulated edge device: a pool of workers answering a stream of label
// queries over deployed vaults.
//
// Two front-ends share the worker machinery. Server is the single-tenant
// form — one vault, one pre-planned core.Workspace per worker, so the hot
// path allocates nothing. MultiServer is the multi-tenant form: requests
// carry a vault ID and the shared worker pool routes them across a
// registry.Registry, which plans workspaces lazily and evicts
// least-recently-served vaults when the enclave's EPC cannot hold every
// tenant (see DESIGN.md, "Multi-vault registry and EPC scheduling").
//
// Micro-batching here coalesces queued requests into one worker wake-up:
// GNN inference is full-graph, so requests cannot be fused into a wider
// matrix, but draining the queue in batches amortises scheduling and keeps
// each worker's workspace cache-hot across consecutive requests. The
// multi-vault worker additionally serves consecutive same-vault requests
// in a drained batch under one workspace checkout.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/mat"
	"gnnvault/internal/obs"
	"gnnvault/internal/registry"
	"gnnvault/internal/subgraph"
)

// ErrClosed is returned by Predict after Close.
var ErrClosed = errors.New("serve: server closed")

// ErrNodeQueriesDisabled is returned by PredictNodes on a server started
// without Config.NodeQuery.
var ErrNodeQueriesDisabled = errors.New("serve: node queries not enabled")

// Config tunes the worker pool.
type Config struct {
	// Workers is the number of inference workers, each with its own
	// planned workspace (and therefore its own EPC charge). Default 2.
	Workers int
	// MaxBatch caps how many queued requests one worker drains per
	// wake-up. Default 8.
	MaxBatch int
	// QueueDepth bounds the request queue; Predict blocks when it is
	// full (backpressure). Default Workers·MaxBatch·2.
	QueueDepth int
	// Plan shapes each worker's full-graph workspace (EPC budget / tile
	// height / kernel worker budget — see core.PlanConfig). The zero value
	// plans classic untiled workspaces. Because the budget is carried per
	// plan, two servers with different settings can coexist in one
	// process without racing on the deprecated mat.SetMaxWorkers global.
	//
	// Plan applies to the single-vault Server only, which plans its own
	// workspaces up front. MultiServer checks workspaces out of a
	// registry.Registry, so its plan shape is the registry's
	// Config.Plan; this field is ignored there.
	Plan core.PlanConfig
	// NodeQuery, when non-nil, additionally plans one subgraph workspace
	// per worker and opens the PredictNodes path: node-level queries
	// served from sampled L-hop subgraphs at O(hops × fanout) per query.
	// Seed nodes from every node query a worker drains in one wake-up are
	// coalesced into shared extractions of up to MaxSeeds seeds.
	NodeQuery *registry.NodeQueryConfig
	// Features is the deployed graph's public feature matrix, gathered
	// from during subgraph extraction. Required when NodeQuery is set.
	// When set, it is also registered as the vault's calibration batch, so
	// reduced-precision plans (Plan.Precision) can derive their scales and
	// pass the agreement gate.
	Features *mat.Matrix
	// ExposeScores opens the PredictScores/PredictNodesScores surface:
	// per-class softmax posteriors cross the enclave boundary alongside
	// labels. Off by default — label-only output is the paper's strongest
	// defense — and priced into the ECALL result payload when on.
	ExposeScores bool
	// RoundDigits, when > 0, coarsens every exposed score row to that
	// many decimal digits. Rounding is argmax-preserving: the top entry
	// rounds up, the rest round down, so labels never change.
	RoundDigits int
	// TopK, when > 0, keeps only the K largest entries of each exposed
	// score row and zeroes the rest (the argmax entry always survives).
	TopK int
	// Deadline, when > 0, bounds each request's enqueue→answer time on
	// the sharded path: a request still queued past its deadline fails
	// without running, and a fan-out in flight past it is aborted through
	// the fleet's poisonable barriers (context.DeadlineExceeded, HTTP
	// 503). Zero serves without a deadline.
	Deadline time.Duration
	// MaxRetries is how many times a node query routed to a tripped
	// shard waits out a jittered exponential backoff for the shard to
	// recover before failing with ErrShardUnavailable. Each wait is
	// bounded by the request's remaining Deadline. Default 0: fail fast.
	MaxRetries int
	// BreakerThreshold is how many consecutive failures on one shard trip
	// its circuit breaker (an enclave loss trips it immediately
	// regardless). Default 3.
	BreakerThreshold int
	// RecoveryBackoff is the base delay of the breaker's automatic
	// recovery loop; attempts back off exponentially (with deterministic
	// jitter) from it. It also paces the node-query retry waits. Default
	// 5ms.
	RecoveryBackoff time.Duration
	// Seed seeds the deterministic jitter applied to recovery and retry
	// backoff, so chaos runs replay exactly. Default 1.
	Seed int64
	// Trace, when non-nil, records shard fault and recovery events into
	// the flight recorder's span ring (the same ring APIConfig.Trace
	// serves on /debug/trace).
	Trace *obs.Ring
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = c.Workers * c.MaxBatch * 2
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.RecoveryBackoff <= 0 {
		c.RecoveryBackoff = 5 * time.Millisecond
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Stats is a snapshot of the server's counters since New. The latency
// fields all derive from one pair of histogram snapshots taken at the
// same instant, so they are mutually consistent — AvgLatency can never
// exceed MaxLatency, and the quantiles are cut from the same
// distribution the average summarises.
type Stats struct {
	Requests  uint64 // accepted by Predict
	Completed uint64 // answered successfully
	Errors    uint64 // answered with an error
	Batches   uint64 // worker wake-ups (micro-batches)

	AvgBatch   float64       // Completed+Errors per batch
	AvgLatency time.Duration // mean enqueue→answer time
	MaxLatency time.Duration
	P50Latency time.Duration
	P95Latency time.Duration
	P99Latency time.Duration
	Throughput float64 // completed requests per second of uptime
	Uptime     time.Duration

	// FullLatency and NodeLatency are the per-endpoint enqueue→answer
	// distributions (ns samples) the aggregate fields above merge — the
	// same histograms the /metrics scrape surface renders.
	FullLatency obs.HistSnapshot
	NodeLatency obs.HistSnapshot

	// SpillBytes is the accumulated modelled tile-flush traffic of every
	// answered full-graph request (0 for untiled plans).
	SpillBytes int64

	// Degraded counts node queries answered successfully while at least
	// one shard of the fleet was offline — served work the fleet kept
	// doing through an outage.
	Degraded uint64
	// DeadlineExceeded counts requests that failed their Config.Deadline,
	// whether still queued or aborted mid-fan-out.
	DeadlineExceeded uint64
}

type request struct {
	x      *mat.Matrix
	nodes  []int // non-nil marks a node-level query
	out    []int
	scores [][]float64 // non-nil marks a score query; one row per label
	err    error
	enq    time.Time
	done   chan struct{}
}

// counters aggregates the serving statistics shared by Server and
// MultiServer. Latency lives in two obs histograms (one per endpoint
// family) instead of separate sum/max atomics: every derived figure —
// average, max, quantiles, the /metrics exposition — is cut from the
// same buckets, so the old inconsistency where a racing sum and CAS-max
// could report avg > max is gone by construction. Observing stays
// allocation-free (atomic bucket increments).
type counters struct {
	requests   atomic.Uint64
	completed  atomic.Uint64
	errors     atomic.Uint64
	batches    atomic.Uint64
	latFull    obs.Histogram // full-graph enqueue→answer ns
	latNode    obs.Histogram // node-query enqueue→answer ns
	spillBytes atomic.Int64  // modelled tile-flush traffic of answered full-graph requests

	degraded         atomic.Uint64 // node queries answered during a shard outage
	deadlineExceeded atomic.Uint64 // requests failed by Config.Deadline
}

// observe records one answered request: its outcome and its
// enqueue→answer latency, bucketed by endpoint family.
func (c *counters) observe(err error, enq time.Time, node bool) {
	if err != nil {
		c.errors.Add(1)
	} else {
		c.completed.Add(1)
	}
	lat := time.Since(enq).Nanoseconds()
	if node {
		c.latNode.Observe(lat)
	} else {
		c.latFull.Observe(lat)
	}
}

// snapshot derives a Stats from the counters and the server start time.
// All latency figures come from one pair of histogram snapshots.
func (c *counters) snapshot(start time.Time) Stats {
	full := c.latFull.Snapshot()
	node := c.latNode.Snapshot()
	all := full.Merge(node)
	st := Stats{
		Requests:    c.requests.Load(),
		Completed:   c.completed.Load(),
		Errors:      c.errors.Load(),
		Batches:     c.batches.Load(),
		AvgLatency:  time.Duration(all.Avg()),
		MaxLatency:  time.Duration(all.Max),
		P50Latency:  time.Duration(all.Quantile(0.50)),
		P95Latency:  time.Duration(all.Quantile(0.95)),
		P99Latency:  time.Duration(all.Quantile(0.99)),
		Uptime:      time.Since(start),
		FullLatency: full,
		NodeLatency: node,
		SpillBytes:  c.spillBytes.Load(),

		Degraded:         c.degraded.Load(),
		DeadlineExceeded: c.deadlineExceeded.Load(),
	}
	answered := st.Completed + st.Errors
	if st.Batches > 0 {
		st.AvgBatch = float64(answered) / float64(st.Batches)
	}
	if sec := st.Uptime.Seconds(); sec > 0 {
		st.Throughput = float64(st.Completed) / sec
	}
	return st
}

// Server is a pool of inference workers over one deployed vault.
type Server struct {
	vault *core.Vault
	cfg   Config
	reqs  chan *request
	pool  sync.Pool

	// sendMu lets Close wait out in-flight Predict sends before closing
	// the queue channel.
	sendMu sync.RWMutex
	closed atomic.Bool
	wg     sync.WaitGroup
	start  time.Time

	counters
}

// New plans one workspace per worker against v — plus one subgraph
// workspace per worker when cfg.NodeQuery is set — and starts the pool.
// It fails — releasing anything it planned — if the combined workspaces do
// not fit the enclave's EPC, which is the real bound on worker concurrency
// for an enclave-backed deployment.
func New(v *core.Vault, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.NodeQuery != nil {
		nq := cfg.NodeQuery.WithDefaults()
		cfg.NodeQuery = &nq
		if cfg.Features == nil || cfg.Features.Rows != v.Nodes() {
			return nil, fmt.Errorf("serve: node queries need the deployed graph's %d-row feature matrix", v.Nodes())
		}
	}
	rows := v.Nodes()
	if cfg.Features != nil {
		if err := v.SetCalibrationFeatures(cfg.Features); err != nil {
			return nil, fmt.Errorf("serve: registering calibration features: %w", err)
		}
	}
	workspaces := make([]*core.Workspace, 0, cfg.Workers)
	subWS := make([]*core.SubgraphWorkspace, 0, cfg.Workers)
	release := func() {
		for _, w := range workspaces {
			w.Release()
		}
		for _, w := range subWS {
			w.Release()
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		ws, err := v.PlanWith(rows, cfg.Plan)
		if err != nil {
			release()
			return nil, fmt.Errorf("serve: planning workspace for worker %d/%d: %w", i+1, cfg.Workers, err)
		}
		workspaces = append(workspaces, ws)
		if cfg.NodeQuery != nil {
			sw, err := v.PlanSubgraphWith(cfg.NodeQuery.MaxSeeds, cfg.NodeQuery.Subgraph(), cfg.Plan)
			if err != nil {
				release()
				return nil, fmt.Errorf("serve: planning node-query workspace for worker %d/%d: %w", i+1, cfg.Workers, err)
			}
			subWS = append(subWS, sw)
		}
	}
	s := &Server{
		vault: v,
		cfg:   cfg,
		reqs:  make(chan *request, cfg.QueueDepth),
		start: time.Now(),
	}
	s.pool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	for i, ws := range workspaces {
		var sw *core.SubgraphWorkspace
		if cfg.NodeQuery != nil {
			sw = subWS[i]
		}
		s.wg.Add(1)
		go s.worker(ws, sw)
	}
	return s, nil
}

// Predict enqueues one inference over x and blocks until a worker answers.
// The returned slice is freshly allocated and owned by the caller. Safe for
// concurrent use; blocks for backpressure when the queue is full.
func (s *Server) Predict(x *mat.Matrix) ([]int, error) {
	req := s.pool.Get().(*request)
	req.x = x
	req.out = make([]int, x.Rows)
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	out, err := req.out, req.err
	req.x, req.out, req.err = nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PredictScores enqueues one inference over x and blocks until a worker
// answers with the defended per-class posterior row and label for every
// input row. The server must have been started with Config.ExposeScores;
// otherwise it fails with ErrScoresDisabled. Returned slices are freshly
// allocated and owned by the caller.
func (s *Server) PredictScores(x *mat.Matrix) ([][]float64, []int, error) {
	if !s.cfg.ExposeScores {
		return nil, nil, ErrScoresDisabled
	}
	req := s.pool.Get().(*request)
	req.x = x
	req.out = make([]int, x.Rows)
	req.scores = make([][]float64, x.Rows)
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	scores, out, err := req.scores, req.out, req.err
	req.x, req.out, req.scores, req.err = nil, nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, nil, err
	}
	return scores, out, nil
}

// PredictNodesScores is PredictNodes for servers exposing scores: one
// defended posterior row and label per requested node, served through the
// same coalesced subgraph extractions. Fails with ErrScoresDisabled when
// Config.ExposeScores is off and ErrNodeQueriesDisabled when node queries
// are not planned.
func (s *Server) PredictNodesScores(nodes []int) ([][]float64, []int, error) {
	if !s.cfg.ExposeScores {
		return nil, nil, ErrScoresDisabled
	}
	if s.cfg.NodeQuery == nil {
		return nil, nil, ErrNodeQueriesDisabled
	}
	if len(nodes) == 0 {
		return [][]float64{}, []int{}, nil
	}
	req := s.pool.Get().(*request)
	req.x = nil
	req.nodes = nodes
	req.out = make([]int, len(nodes))
	req.scores = make([][]float64, len(nodes))
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	scores, out, err := req.scores, req.out, req.err
	req.nodes, req.out, req.scores, req.err = nil, nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, nil, err
	}
	return scores, out, nil
}

// PredictNodes enqueues one node-level query and blocks until a worker
// answers with one label per requested node. The server must have been
// started with Config.NodeQuery; queries whose distinct seed count
// exceeds NodeQuery.MaxSeeds fail with subgraph.ErrTooManySeeds, and
// out-of-range nodes with core.ErrNodeOutOfRange. nodes must not be
// mutated until PredictNodes returns. The returned slice is freshly
// allocated and owned by the caller.
func (s *Server) PredictNodes(nodes []int) ([]int, error) {
	if s.cfg.NodeQuery == nil {
		return nil, ErrNodeQueriesDisabled
	}
	if len(nodes) == 0 {
		return []int{}, nil
	}
	req := s.pool.Get().(*request)
	req.x = nil
	req.nodes = nodes
	req.out = make([]int, len(nodes))
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	out, err := req.out, req.err
	req.nodes, req.out, req.err = nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// worker drains the queue in micro-batches, answering every request with
// its own pre-planned workspace. Node queries in a drained batch are set
// aside and served together through the worker's subgraph workspace, so a
// burst of single-node queries pays for one extraction, not one each.
func (s *Server) worker(ws *core.Workspace, sub *core.SubgraphWorkspace) {
	defer s.wg.Done()
	defer ws.Release()
	if sub != nil {
		defer sub.Release()
	}
	batch := make([]*request, 0, s.cfg.MaxBatch)
	nodeReqs := make([]*request, 0, s.cfg.MaxBatch)
	var co coalescer
	if sub != nil {
		co = newCoalescer(sub.MaxSeeds())
	}
	for {
		req, ok := <-s.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], req)
		// Coalesce whatever else is already queued, up to MaxBatch.
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		s.batches.Add(1)
		nodeReqs = nodeReqs[:0]
		for _, r := range batch {
			if r.nodes != nil {
				nodeReqs = append(nodeReqs, r)
				continue
			}
			s.answer(r, ws)
		}
		if len(nodeReqs) > 0 {
			if sub == nil {
				// Unreachable through PredictNodes' guard; defence in depth.
				for _, r := range nodeReqs {
					r.err = ErrNodeQueriesDisabled
					s.observe(r.err, r.enq, true)
					r.done <- struct{}{}
				}
			} else {
				s.answerNodeBatch(nodeReqs, sub, &co)
			}
		}
	}
}

func (s *Server) answer(r *request, ws *core.Workspace) {
	var labels []int
	var err error
	if r.scores != nil {
		var logits *mat.Matrix
		logits, labels, _, err = s.vault.PredictScoresInto(r.x, ws)
		if err == nil {
			for i := range r.scores { // the machine's output view is reused
				r.scores[i] = s.cfg.defendedRow(logits.Row(i))
			}
		}
	} else {
		labels, _, err = s.vault.PredictInto(r.x, ws)
	}
	if err != nil {
		r.err = err
	} else {
		copy(r.out, labels) // the workspace's label buffer is reused
		s.spillBytes.Add(ws.SpillBytes())
	}
	s.observe(err, r.enq, false)
	r.done <- struct{}{}
}

// answerNodeBatch serves one wake-up's node queries: the coalescer packs
// their seed sets into as few shared extractions as MaxSeeds admits, each
// chunk runs one PredictNodesInto, and every request reads its labels off
// the chunk's union. Requests with out-of-range seeds are rejected
// individually first, so one bad query can never fail the valid queries
// coalesced into its chunk.
func (s *Server) answerNodeBatch(reqs []*request, sub *core.SubgraphWorkspace, co *coalescer) {
	n := s.vault.Nodes()
	valid := reqs[:0]
	for _, r := range reqs {
		if !nodesInRange(r.nodes, n) {
			r.err = core.ErrNodeOutOfRange
			s.observe(r.err, r.enq, true)
			r.done <- struct{}{}
			continue
		}
		valid = append(valid, r)
	}
	reqs = valid
	co.pack(len(reqs),
		func(i int) []int { return reqs[i].nodes },
		func(i int, err error) {
			reqs[i].err = err
			s.observe(err, reqs[i].enq, true)
			reqs[i].done <- struct{}{}
		},
		func(idxs, union []int) {
			// One score query in the chunk upgrades the whole extraction
			// to the scores variant; label-only requests still read just
			// their labels.
			wantScores := false
			for _, i := range idxs {
				if reqs[i].scores != nil {
					wantScores = true
					break
				}
			}
			var labels []int
			var logits *mat.Matrix
			var err error
			if wantScores {
				logits, labels, _, err = s.vault.PredictNodesScoresInto(s.cfg.Features, union, sub)
			} else {
				labels, _, err = s.vault.PredictNodesInto(s.cfg.Features, union, sub)
			}
			for _, i := range idxs {
				r := reqs[i]
				if err != nil {
					r.err = err
				} else {
					for k, u := range r.nodes {
						j := indexOf(union, u)
						r.out[k] = labels[j]
						if r.scores != nil {
							r.scores[k] = s.cfg.defendedRow(logits.Row(j))
						}
					}
				}
				s.observe(err, r.enq, true)
				r.done <- struct{}{}
			}
		})
}

// nodesInRange reports whether every seed falls inside [0, n).
func nodesInRange(nodes []int, n int) bool {
	for _, u := range nodes {
		if u < 0 || u >= n {
			return false
		}
	}
	return true
}

// indexOf returns the position of u in union (which holds at most
// MaxSeeds entries — a linear scan beats any map at that size).
func indexOf(union []int, u int) int {
	for i, v := range union {
		if v == u {
			return i
		}
	}
	return -1 // unreachable: every request node was packed into its union
}

// coalescer packs a run of node queries' seed sets into shared extraction
// unions of at most maxSeeds distinct seeds. Buffers are reused across
// batches, so steady-state packing never allocates beyond the callbacks.
type coalescer struct {
	maxSeeds int
	union    []int
	idxs     []int
}

// newCoalescer sizes a coalescer for unions of maxSeeds seeds.
func newCoalescer(maxSeeds int) coalescer {
	return coalescer{
		maxSeeds: maxSeeds,
		union:    make([]int, 0, maxSeeds),
		idxs:     make([]int, 0, 16),
	}
}

// pack walks requests 0..n-1 in order (their seed sets read through
// seeds), growing the current union until the next request's unseen seeds
// would overflow it, then flushes the accumulated request indices and
// union through serve. Requests whose own distinct seed set cannot fit
// any union fail through reject with subgraph.ErrTooManySeeds; empty
// requests complete through reject with a nil error.
func (c *coalescer) pack(n int, seeds func(int) []int, reject func(int, error), serve func(idxs, union []int)) {
	c.union = c.union[:0]
	c.idxs = c.idxs[:0]
	flush := func() {
		if len(c.idxs) > 0 {
			serve(c.idxs, c.union)
			c.union = c.union[:0]
			c.idxs = c.idxs[:0]
		}
	}
	for i := 0; i < n; i++ {
		nodes := seeds(i)
		if len(nodes) == 0 {
			reject(i, nil) // zero labels requested: answered without work
			continue
		}
		if distinctCount(nodes) > c.maxSeeds {
			reject(i, subgraph.ErrTooManySeeds)
			continue
		}
		if len(c.union)+c.countFresh(nodes) > c.maxSeeds {
			flush()
		}
		for _, u := range nodes {
			if indexOf(c.union, u) < 0 {
				c.union = append(c.union, u)
			}
		}
		c.idxs = append(c.idxs, i)
	}
	flush()
}

// countFresh returns how many distinct seeds of nodes are not yet in the
// union — the union growth admitting this request would cost.
func (c *coalescer) countFresh(nodes []int) int {
	fresh := 0
	for i, u := range nodes {
		if indexOf(c.union, u) >= 0 || indexOf(nodes[:i], u) >= 0 {
			continue
		}
		fresh++
	}
	return fresh
}

// distinctCount returns the number of distinct seeds in nodes.
func distinctCount(nodes []int) int {
	n := 0
	for i, u := range nodes {
		if indexOf(nodes[:i], u) < 0 {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	return s.snapshot(s.start)
}

// Close stops accepting requests, waits for queued work to finish, and
// releases every worker workspace (returning their EPC to the enclave).
// Idempotent.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		s.wg.Wait()
		return
	}
	// Wait out in-flight Predict sends, then close the queue so workers
	// drain and exit.
	s.sendMu.Lock()
	close(s.reqs)
	s.sendMu.Unlock()
	s.wg.Wait()
}
