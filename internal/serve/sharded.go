package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/enclave"
	"gnnvault/internal/mat"
	"gnnvault/internal/obs"
)

// ErrShardUnavailable is returned when a query's target shard enclave is
// offline (SetShardAvailable), or — for full-graph queries — when any
// shard of the fleet is: the halo exchange barriers need every enclave.
// It is deliberately distinct from both enclave.ErrEPCExhausted (a
// capacity failure the registry answers with evictions) and ErrRateLimited
// (a policy decision against one client): a shard outage is transient
// infrastructure state, retryable once the shard rejoins, and must trigger
// neither evictions nor throttle accounting.
var ErrShardUnavailable = errors.New("serve: shard unavailable")

// ShardedServer is the worker pool over a core.ShardedVault: the vault's
// private CSR split across a fleet of shard enclaves. Each worker owns one
// sharded full-graph workspace (the backbone plus one rectifier machine
// per shard, coupled through halo-exchange barriers) and, when node
// queries are enabled, one subgraph workspace per shard, planned against
// that shard's own enclave.
//
// Routing: a full-graph query fans out to every shard — the fleet's
// barriers make the per-layer halo exchange a joint step, so the whole
// fleet must be up. A node query routes to the shard owning its first
// seed; cross-shard rows its extraction touches are priced as OCALLs plus
// halo bytes by the core layer and accumulated here per shard.
//
// Sharded serving is label-only: per-class scores are not wired through
// the fleet, so NewSharded refuses Config.ExposeScores and the score
// endpoints fail with ErrScoresDisabled.
type ShardedServer struct {
	sv   *core.ShardedVault
	cfg  Config
	reqs chan *request
	pool sync.Pool

	// sendMu lets Close wait out in-flight Predict sends before closing
	// the queue channel (same protocol as Server).
	sendMu sync.RWMutex
	closed atomic.Bool
	wg     sync.WaitGroup
	start  time.Time

	counters

	// Per-shard serving state: availability flags flipped by
	// SetShardAvailable, accumulated halo traffic, and the full-graph
	// fan-out latency histogram surfaced on /metrics.
	avail     []atomic.Bool
	shardHalo []atomic.Int64
	fanout    obs.Histogram
}

// NewSharded plans one sharded workspace per worker against sv — plus one
// subgraph workspace per worker per shard when cfg.NodeQuery is set — and
// starts the pool. Config knobs keep their Server meaning; Plan applies
// per shard (an EPC budget is each shard enclave's own budget). Fails,
// releasing anything it planned, when a shard's share does not fit its
// enclave, and refuses Config.ExposeScores: the sharded path is
// label-only.
func NewSharded(sv *core.ShardedVault, cfg Config) (*ShardedServer, error) {
	cfg = cfg.withDefaults()
	if cfg.ExposeScores {
		return nil, fmt.Errorf("serve: sharded serving is label-only, scores cannot be exposed: %w", ErrScoresDisabled)
	}
	if cfg.NodeQuery != nil {
		nq := cfg.NodeQuery.WithDefaults()
		cfg.NodeQuery = &nq
		if cfg.Features == nil || cfg.Features.Rows != sv.Nodes() {
			return nil, fmt.Errorf("serve: node queries need the deployed graph's %d-row feature matrix", sv.Nodes())
		}
	}
	rows := sv.Nodes()
	if cfg.Features != nil {
		if err := sv.SetCalibrationFeatures(cfg.Features); err != nil {
			return nil, fmt.Errorf("serve: registering calibration features: %w", err)
		}
	}
	workspaces := make([]*core.ShardedWorkspace, 0, cfg.Workers)
	subWS := make([][]*core.SubgraphWorkspace, 0, cfg.Workers)
	release := func() {
		for _, w := range workspaces {
			w.Release()
		}
		for _, subs := range subWS {
			for _, w := range subs {
				w.Release()
			}
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		ws, err := sv.PlanSharded(rows, cfg.Plan)
		if err != nil {
			release()
			return nil, fmt.Errorf("serve: planning sharded workspace for worker %d/%d: %w", i+1, cfg.Workers, err)
		}
		workspaces = append(workspaces, ws)
		if cfg.NodeQuery != nil {
			subWS = append(subWS, nil)
			for sh := 0; sh < sv.Shards(); sh++ {
				sw, err := sv.Shard(sh).PlanSubgraphWith(cfg.NodeQuery.MaxSeeds, cfg.NodeQuery.Subgraph(), cfg.Plan)
				if err != nil {
					release()
					return nil, fmt.Errorf("serve: planning node-query workspace for worker %d/%d shard %d: %w", i+1, cfg.Workers, sh, err)
				}
				subWS[i] = append(subWS[i], sw)
			}
		}
	}
	s := &ShardedServer{
		sv:        sv,
		cfg:       cfg,
		reqs:      make(chan *request, cfg.QueueDepth),
		start:     time.Now(),
		avail:     make([]atomic.Bool, sv.Shards()),
		shardHalo: make([]atomic.Int64, sv.Shards()),
	}
	for i := range s.avail {
		s.avail[i].Store(true)
	}
	s.pool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	for i, ws := range workspaces {
		var subs []*core.SubgraphWorkspace
		if cfg.NodeQuery != nil {
			subs = subWS[i]
		}
		s.wg.Add(1)
		go s.worker(ws, subs)
	}
	return s, nil
}

// Shards returns the served fleet's shard count.
func (s *ShardedServer) Shards() int { return s.sv.Shards() }

// SetShardAvailable marks shard sh as serving or offline. An offline
// shard fails node queries it owns — and every full-graph query, since
// the fleet's halo barriers need all shards — with ErrShardUnavailable.
// In-flight requests are unaffected; the flag gates admission only, so
// flipping it is safe at any time from any goroutine.
func (s *ShardedServer) SetShardAvailable(sh int, ok bool) {
	s.avail[sh].Store(ok)
}

// offlineShard returns the lowest offline shard, or -1 when the whole
// fleet is serving.
func (s *ShardedServer) offlineShard() int {
	for i := range s.avail {
		if !s.avail[i].Load() {
			return i
		}
	}
	return -1
}

// Predict enqueues one full-graph inference over x, fanned out across the
// shard fleet, and blocks until a worker answers. The returned slice is
// freshly allocated and owned by the caller; labels are bit-identical to
// a single-enclave server's. Safe for concurrent use; blocks for
// backpressure when the queue is full.
func (s *ShardedServer) Predict(x *mat.Matrix) ([]int, error) {
	req := s.pool.Get().(*request)
	req.x = x
	req.out = make([]int, x.Rows)
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	out, err := req.out, req.err
	req.x, req.out, req.err = nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PredictScores always fails with ErrScoresDisabled: the sharded path is
// label-only (scores are not wired through the fleet).
func (s *ShardedServer) PredictScores(x *mat.Matrix) ([][]float64, []int, error) {
	return nil, nil, ErrScoresDisabled
}

// PredictNodesScores always fails with ErrScoresDisabled: the sharded
// path is label-only.
func (s *ShardedServer) PredictNodesScores(nodes []int) ([][]float64, []int, error) {
	return nil, nil, ErrScoresDisabled
}

// PredictNodes enqueues one node-level query and blocks until a worker
// answers with one label per requested node. The query routes to the
// shard owning its first seed; an offline owner fails the query with
// ErrShardUnavailable. Other semantics match Server.PredictNodes.
func (s *ShardedServer) PredictNodes(nodes []int) ([]int, error) {
	if s.cfg.NodeQuery == nil {
		return nil, ErrNodeQueriesDisabled
	}
	if len(nodes) == 0 {
		return []int{}, nil
	}
	req := s.pool.Get().(*request)
	req.x = nil
	req.nodes = nodes
	req.out = make([]int, len(nodes))
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	out, err := req.out, req.err
	req.nodes, req.out, req.err = nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// shardWorkerState is one worker's reusable node-query routing buffers:
// requests bucketed by owning shard, and one seed coalescer per shard so
// unions never mix shards.
type shardWorkerState struct {
	byShard [][]*request
	cos     []coalescer
}

// worker drains the queue in micro-batches. Full-graph requests each fan
// out across the fleet through the worker's sharded workspace; node
// queries in a drained batch are routed to their owning shards and
// coalesced per shard, so a burst of same-shard queries pays for one
// extraction.
func (s *ShardedServer) worker(ws *core.ShardedWorkspace, subs []*core.SubgraphWorkspace) {
	defer s.wg.Done()
	defer ws.Release()
	for _, sw := range subs {
		defer sw.Release()
	}
	batch := make([]*request, 0, s.cfg.MaxBatch)
	nodeReqs := make([]*request, 0, s.cfg.MaxBatch)
	var st shardWorkerState
	if subs != nil {
		st.byShard = make([][]*request, len(subs))
		st.cos = make([]coalescer, len(subs))
		for i := range st.cos {
			st.cos[i] = newCoalescer(subs[i].MaxSeeds())
		}
	}
	for {
		req, ok := <-s.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], req)
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		s.batches.Add(1)
		nodeReqs = nodeReqs[:0]
		for _, r := range batch {
			if r.nodes != nil {
				nodeReqs = append(nodeReqs, r)
				continue
			}
			s.answer(r, ws)
		}
		if len(nodeReqs) > 0 {
			if subs == nil {
				// Unreachable through PredictNodes' guard; defence in depth.
				for _, r := range nodeReqs {
					r.err = ErrNodeQueriesDisabled
					s.observe(r.err, r.enq, true)
					r.done <- struct{}{}
				}
			} else {
				s.answerNodeBatch(nodeReqs, subs, &st)
			}
		}
	}
}

// answer serves one full-graph request: admission first (the whole fleet
// must be up), then one fan-out through the sharded workspace, timed into
// the fan-out histogram and its halo traffic accumulated per shard.
func (s *ShardedServer) answer(r *request, ws *core.ShardedWorkspace) {
	var labels []int
	var err error
	if off := s.offlineShard(); off >= 0 {
		err = fmt.Errorf("%w: shard %d is offline and full-graph inference needs the whole fleet", ErrShardUnavailable, off)
	} else {
		fan := time.Now()
		labels, _, err = s.sv.PredictInto(r.x, ws)
		s.fanout.Observe(time.Since(fan).Nanoseconds())
	}
	if err != nil {
		r.err = err
	} else {
		copy(r.out, labels) // the workspace's label buffer is reused
		s.spillBytes.Add(ws.SpillBytes())
		for sh := range s.shardHalo {
			s.shardHalo[sh].Add(ws.ShardHaloBytes(sh))
		}
	}
	s.observe(err, r.enq, false)
	r.done <- struct{}{}
}

// answerNodeBatch serves one wake-up's node queries: per-request
// validation and routing first — out-of-range seeds and offline owners
// fail individually, so one bad query never poisons its batch — then each
// shard's run is coalesced into shared extractions and answered on that
// shard's subgraph workspace, with the cross-shard rows the extraction
// touched accumulated as that shard's halo traffic.
func (s *ShardedServer) answerNodeBatch(reqs []*request, subs []*core.SubgraphWorkspace, st *shardWorkerState) {
	n := s.sv.Nodes()
	for i := range st.byShard {
		st.byShard[i] = st.byShard[i][:0]
	}
	for _, r := range reqs {
		if !nodesInRange(r.nodes, n) {
			s.reject(r, core.ErrNodeOutOfRange)
			continue
		}
		sh, err := s.sv.RouteSeeds(r.nodes)
		if err != nil {
			s.reject(r, err)
			continue
		}
		if !s.avail[sh].Load() {
			s.reject(r, fmt.Errorf("%w: shard %d owning node %d is offline", ErrShardUnavailable, sh, r.nodes[0]))
			continue
		}
		st.byShard[sh] = append(st.byShard[sh], r)
	}
	for sh := range st.byShard {
		run := st.byShard[sh]
		if len(run) == 0 {
			continue
		}
		st.cos[sh].pack(len(run),
			func(i int) []int { return run[i].nodes },
			func(i int, err error) {
				run[i].err = err
				s.observe(err, run[i].enq, true)
				run[i].done <- struct{}{}
			},
			func(idxs, union []int) {
				labels, halo, _, err := s.sv.PredictNodesAt(s.cfg.Features, union, sh, subs[sh])
				if err == nil {
					s.shardHalo[sh].Add(halo)
				}
				for _, i := range idxs {
					r := run[i]
					if err != nil {
						r.err = err
					} else {
						for k, u := range r.nodes {
							r.out[k] = labels[indexOf(union, u)]
						}
					}
					s.observe(err, r.enq, true)
					r.done <- struct{}{}
				}
			})
	}
}

// reject completes one node request with an error.
func (s *ShardedServer) reject(r *request, err error) {
	r.err = err
	s.observe(err, r.enq, true)
	r.done <- struct{}{}
}

// ShardStats is a per-shard snapshot of the fleet's serving state: the
// availability flags, accumulated halo traffic, each shard enclave's EPC
// occupancy, the full-graph fan-out latency distribution and the summed
// transition ledger (PeakEPCBytes is the busiest single enclave — each
// shard has its own EPC).
type ShardStats struct {
	Shards    int
	Available []bool
	HaloBytes []int64 // accumulated boundary-activation bytes gathered per shard
	EPCUsed   []int64
	EPCFree   []int64
	EPCLimit  []int64

	Fanout obs.HistSnapshot // full-graph fan-out wall time, ns samples
	Ledger enclave.Ledger   // summed over shard enclaves
}

// ShardStats returns the current per-shard snapshot.
func (s *ShardedServer) ShardStats() ShardStats {
	shards := s.sv.Shards()
	st := ShardStats{
		Shards:    shards,
		Available: make([]bool, shards),
		HaloBytes: make([]int64, shards),
		EPCUsed:   make([]int64, shards),
		EPCFree:   make([]int64, shards),
		EPCLimit:  make([]int64, shards),
		Fanout:    s.fanout.Snapshot(),
	}
	for i := 0; i < shards; i++ {
		st.Available[i] = s.avail[i].Load()
		st.HaloBytes[i] = s.shardHalo[i].Load()
		encl := s.sv.Shard(i).Enclave
		st.EPCUsed[i] = encl.EPCUsed()
		st.EPCFree[i] = encl.EPCFree()
		st.EPCLimit[i] = encl.EPCLimit()
		led := encl.Ledger()
		st.Ledger.ECalls += led.ECalls
		st.Ledger.OCalls += led.OCalls
		st.Ledger.BytesIn += led.BytesIn
		st.Ledger.BytesOut += led.BytesOut
		st.Ledger.PageSwaps += led.PageSwaps
		st.Ledger.TransitionNs += led.TransitionNs
		st.Ledger.TransferNs += led.TransferNs
		st.Ledger.PagingNs += led.PagingNs
		st.Ledger.ComputeNs += led.ComputeNs
		st.Ledger.AllocFailures += led.AllocFailures
		if led.PeakEPCBytes > st.Ledger.PeakEPCBytes {
			st.Ledger.PeakEPCBytes = led.PeakEPCBytes
		}
	}
	return st
}

// Stats returns a snapshot of the serving counters.
func (s *ShardedServer) Stats() Stats {
	return s.snapshot(s.start)
}

// Close stops accepting requests, waits for queued work to finish, and
// releases every worker workspace across every shard enclave. The fleet
// itself stays deployed. Idempotent.
func (s *ShardedServer) Close() {
	if s.closed.Swap(true) {
		s.wg.Wait()
		return
	}
	s.sendMu.Lock()
	close(s.reqs)
	s.sendMu.Unlock()
	s.wg.Wait()
}
