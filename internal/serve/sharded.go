package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/enclave"
	"gnnvault/internal/mat"
	"gnnvault/internal/obs"
)

// ErrShardUnavailable is returned when a query's target shard enclave is
// offline (SetShardAvailable or a tripped circuit breaker), or — for
// full-graph queries — when any shard of the fleet is: the halo exchange
// barriers need every enclave. It is deliberately distinct from both
// enclave.ErrEPCExhausted (a capacity failure the registry answers with
// evictions) and ErrRateLimited (a policy decision against one client):
// a shard outage is transient infrastructure state, retryable once the
// shard rejoins, and must trigger neither evictions nor throttle
// accounting.
var ErrShardUnavailable = errors.New("serve: shard unavailable")

// Circuit-breaker states, per shard. The life cycle is closed → open
// (BreakerThreshold consecutive failures, or one enclave loss) →
// half-open (the recovery loop re-sealed and re-proved the shard, and it
// serves again on probation) → closed (first successful query).
const (
	breakerClosed   int32 = 0
	breakerOpen     int32 = 1
	breakerHalfOpen int32 = 2
)

// ShardedServer is the worker pool over a core.ShardedVault: the vault's
// private CSR split across a fleet of shard enclaves. Each worker owns one
// sharded full-graph workspace (the backbone plus one rectifier machine
// per shard, coupled through halo-exchange barriers) and, when node
// queries are enabled, one subgraph workspace per shard, planned against
// that shard's own enclave.
//
// Routing: a full-graph query fans out to every shard — the fleet's
// barriers make the per-layer halo exchange a joint step, so the whole
// fleet must be up. A node query routes to the shard owning its first
// seed; cross-shard rows its extraction touches are priced as OCALLs plus
// halo bytes by the core layer and accumulated here per shard.
//
// Failure domain: each shard has a circuit breaker. An enclave loss (or
// BreakerThreshold consecutive failures) trips it: the shard goes
// offline, in-flight full-graph passes are aborted through the fleet's
// poisonable barriers, and a per-shard recovery loop re-seals the shard
// (core.ShardedVault.RecoverShard) under jittered exponential backoff
// while healthy-shard node queries keep serving — graceful degradation
// instead of an outage. Config.Deadline bounds every request end to end.
//
// Sharded serving is label-only: per-class scores are not wired through
// the fleet, so NewSharded refuses Config.ExposeScores and the score
// endpoints fail with ErrScoresDisabled.
type ShardedServer struct {
	sv   *core.ShardedVault
	cfg  Config
	reqs chan *request
	pool sync.Pool

	// sendMu lets Close wait out in-flight Predict sends before closing
	// the queue channel (same protocol as Server).
	sendMu    sync.RWMutex
	closed    atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup
	start     time.Time

	counters

	// Per-shard serving state: availability flags flipped by
	// SetShardAvailable and the breakers, accumulated halo traffic, and
	// the full-graph fan-out latency histogram surfaced on /metrics.
	avail     []atomic.Bool
	shardHalo []atomic.Int64
	fanout    obs.Histogram

	// Fault domain. The worker workspaces are shared with the recovery
	// loop so a re-sealed shard can rejoin every pass; node-query
	// workspaces are atomic pointers so recovery can swap in replacements
	// planned against the fresh enclave while workers keep serving.
	workspaces   []*core.ShardedWorkspace
	subs         [][]atomic.Pointer[core.SubgraphWorkspace] // [worker][shard]; nil without NodeQuery
	breaker      []atomic.Int32                             // breakerClosed / breakerOpen / breakerHalfOpen
	fails        []atomic.Int32                             // consecutive failures toward BreakerThreshold
	restarts     []atomic.Uint64                            // successful recoveries per shard
	nodeInflight []atomic.Int64                             // node queries executing per shard (workspace-swap fence)
	trippedAt    []atomic.Int64                             // wall ns of the breaker trip, for the recovery span
	stop         chan struct{}
	healthWG     sync.WaitGroup
}

// NewSharded plans one sharded workspace per worker against sv — plus one
// subgraph workspace per worker per shard when cfg.NodeQuery is set — and
// starts the pool. Config knobs keep their Server meaning; Plan applies
// per shard (an EPC budget is each shard enclave's own budget). Fails,
// releasing anything it planned, when a shard's share does not fit its
// enclave, and refuses Config.ExposeScores: the sharded path is
// label-only.
func NewSharded(sv *core.ShardedVault, cfg Config) (*ShardedServer, error) {
	cfg = cfg.withDefaults()
	if cfg.ExposeScores {
		return nil, fmt.Errorf("serve: sharded serving is label-only, scores cannot be exposed: %w", ErrScoresDisabled)
	}
	if cfg.NodeQuery != nil {
		nq := cfg.NodeQuery.WithDefaults()
		cfg.NodeQuery = &nq
		if cfg.Features == nil || cfg.Features.Rows != sv.Nodes() {
			return nil, fmt.Errorf("serve: node queries need the deployed graph's %d-row feature matrix", sv.Nodes())
		}
	}
	rows := sv.Nodes()
	if cfg.Features != nil {
		if err := sv.SetCalibrationFeatures(cfg.Features); err != nil {
			return nil, fmt.Errorf("serve: registering calibration features: %w", err)
		}
	}
	workspaces := make([]*core.ShardedWorkspace, 0, cfg.Workers)
	subWS := make([][]*core.SubgraphWorkspace, 0, cfg.Workers)
	release := func() {
		for _, w := range workspaces {
			w.Release()
		}
		for _, subs := range subWS {
			for _, w := range subs {
				w.Release()
			}
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		ws, err := sv.PlanSharded(rows, cfg.Plan)
		if err != nil {
			release()
			return nil, fmt.Errorf("serve: planning sharded workspace for worker %d/%d: %w", i+1, cfg.Workers, err)
		}
		workspaces = append(workspaces, ws)
		if cfg.NodeQuery != nil {
			subWS = append(subWS, nil)
			for sh := 0; sh < sv.Shards(); sh++ {
				sw, err := sv.Shard(sh).PlanSubgraphWith(cfg.NodeQuery.MaxSeeds, cfg.NodeQuery.Subgraph(), cfg.Plan)
				if err != nil {
					release()
					return nil, fmt.Errorf("serve: planning node-query workspace for worker %d/%d shard %d: %w", i+1, cfg.Workers, sh, err)
				}
				subWS[i] = append(subWS[i], sw)
			}
		}
	}
	s := &ShardedServer{
		sv:           sv,
		cfg:          cfg,
		reqs:         make(chan *request, cfg.QueueDepth),
		start:        time.Now(),
		avail:        make([]atomic.Bool, sv.Shards()),
		shardHalo:    make([]atomic.Int64, sv.Shards()),
		workspaces:   workspaces,
		breaker:      make([]atomic.Int32, sv.Shards()),
		fails:        make([]atomic.Int32, sv.Shards()),
		restarts:     make([]atomic.Uint64, sv.Shards()),
		nodeInflight: make([]atomic.Int64, sv.Shards()),
		trippedAt:    make([]atomic.Int64, sv.Shards()),
		stop:         make(chan struct{}),
	}
	if cfg.NodeQuery != nil {
		s.subs = make([][]atomic.Pointer[core.SubgraphWorkspace], cfg.Workers)
		for i := range s.subs {
			s.subs[i] = make([]atomic.Pointer[core.SubgraphWorkspace], sv.Shards())
			for sh := range s.subs[i] {
				s.subs[i][sh].Store(subWS[i][sh])
			}
		}
	}
	for i := range s.avail {
		s.avail[i].Store(true)
	}
	s.pool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s, nil
}

// Shards returns the served fleet's shard count.
func (s *ShardedServer) Shards() int { return s.sv.Shards() }

// SetShardAvailable marks shard sh as serving or offline. An offline
// shard fails node queries it owns — and every full-graph query, since
// the fleet's halo barriers need all shards — with ErrShardUnavailable.
// Taking a shard offline also aborts any full-graph pass currently in
// flight through the fleet's poisonable barriers, so a fan-out racing
// the flip gets a clean ErrShardUnavailable instead of a hung barrier.
// Safe at any time from any goroutine; it does not touch the breaker, so
// an administratively pulled shard is not "recovered" behind the
// operator's back.
func (s *ShardedServer) SetShardAvailable(sh int, ok bool) {
	s.avail[sh].Store(ok)
	if !ok {
		s.abortFullGraph(fmt.Errorf("%w: shard %d taken offline mid-pass", ErrShardUnavailable, sh))
	}
}

// abortFullGraph poisons every worker's in-flight full-graph pass with
// cause; idle workspaces ignore it (core.ShardedWorkspace.Abort).
func (s *ShardedServer) abortFullGraph(cause error) {
	for _, ws := range s.workspaces {
		ws.Abort(cause)
	}
}

// offlineShard returns the lowest offline shard, or -1 when the whole
// fleet is serving.
func (s *ShardedServer) offlineShard() int {
	for i := range s.avail {
		if !s.avail[i].Load() {
			return i
		}
	}
	return -1
}

// Predict enqueues one full-graph inference over x, fanned out across the
// shard fleet, and blocks until a worker answers. The returned slice is
// freshly allocated and owned by the caller; labels are bit-identical to
// a single-enclave server's. Safe for concurrent use; blocks for
// backpressure when the queue is full.
func (s *ShardedServer) Predict(x *mat.Matrix) ([]int, error) {
	req := s.pool.Get().(*request)
	req.x = x
	req.out = make([]int, x.Rows)
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	out, err := req.out, req.err
	req.x, req.out, req.err = nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PredictScores always fails with ErrScoresDisabled: the sharded path is
// label-only (scores are not wired through the fleet).
func (s *ShardedServer) PredictScores(x *mat.Matrix) ([][]float64, []int, error) {
	return nil, nil, ErrScoresDisabled
}

// PredictNodesScores always fails with ErrScoresDisabled: the sharded
// path is label-only.
func (s *ShardedServer) PredictNodesScores(nodes []int) ([][]float64, []int, error) {
	return nil, nil, ErrScoresDisabled
}

// PredictNodes enqueues one node-level query and blocks until a worker
// answers with one label per requested node. The query routes to the
// shard owning its first seed; an offline owner fails the query with
// ErrShardUnavailable after up to Config.MaxRetries jittered backoff
// waits for the shard to recover. Other semantics match
// Server.PredictNodes.
func (s *ShardedServer) PredictNodes(nodes []int) ([]int, error) {
	if s.cfg.NodeQuery == nil {
		return nil, ErrNodeQueriesDisabled
	}
	if len(nodes) == 0 {
		return []int{}, nil
	}
	req := s.pool.Get().(*request)
	req.x = nil
	req.nodes = nodes
	req.out = make([]int, len(nodes))
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	out, err := req.out, req.err
	req.nodes, req.out, req.err = nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// shardWorkerState is one worker's reusable node-query routing buffers:
// requests bucketed by owning shard, and one seed coalescer per shard so
// unions never mix shards.
type shardWorkerState struct {
	byShard [][]*request
	cos     []coalescer
}

// worker drains the queue in micro-batches. Full-graph requests each fan
// out across the fleet through the worker's sharded workspace; node
// queries in a drained batch are routed to their owning shards and
// coalesced per shard, so a burst of same-shard queries pays for one
// extraction. Workspaces are released by Close, not here: the recovery
// loop may still be rejoining a re-sealed shard into them after the
// queue drains.
func (s *ShardedServer) worker(w int) {
	defer s.wg.Done()
	ws := s.workspaces[w]
	batch := make([]*request, 0, s.cfg.MaxBatch)
	nodeReqs := make([]*request, 0, s.cfg.MaxBatch)
	var st shardWorkerState
	if s.subs != nil {
		st.byShard = make([][]*request, s.sv.Shards())
		st.cos = make([]coalescer, s.sv.Shards())
		for i := range st.cos {
			st.cos[i] = newCoalescer(s.cfg.NodeQuery.MaxSeeds)
		}
	}
	for {
		req, ok := <-s.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], req)
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		s.batches.Add(1)
		nodeReqs = nodeReqs[:0]
		for _, r := range batch {
			if r.nodes != nil {
				nodeReqs = append(nodeReqs, r)
				continue
			}
			s.answer(r, ws)
		}
		if len(nodeReqs) > 0 {
			if s.subs == nil {
				// Unreachable through PredictNodes' guard; defence in depth.
				for _, r := range nodeReqs {
					r.err = ErrNodeQueriesDisabled
					s.observe(r.err, r.enq, true)
					r.done <- struct{}{}
				}
			} else {
				s.answerNodeBatch(nodeReqs, w, &st)
			}
		}
	}
}

// requestContext derives the execution context for a request enqueued at
// enq under Config.Deadline: a deadline-bounded context carrying the
// remaining budget, or an error when the request already overstayed it
// in the queue. Without a configured deadline the background context
// comes back with a no-op cancel.
func (s *ShardedServer) requestContext(enq time.Time) (context.Context, context.CancelFunc, error) {
	if s.cfg.Deadline <= 0 {
		return context.Background(), func() {}, nil
	}
	remaining := s.cfg.Deadline - time.Since(enq)
	if remaining <= 0 {
		return nil, nil, fmt.Errorf("serve: request exceeded its %v deadline in queue: %w", s.cfg.Deadline, context.DeadlineExceeded)
	}
	ctx, cancel := context.WithTimeout(context.Background(), remaining)
	return ctx, cancel, nil
}

// answer serves one full-graph request: admission first (the whole fleet
// must be up — a degraded fleet fails fast so clients retry after
// recovery), then one deadline-bounded fan-out through the sharded
// workspace, timed into the fan-out histogram, its halo traffic
// accumulated per shard and its outcome fed to the breakers.
func (s *ShardedServer) answer(r *request, ws *core.ShardedWorkspace) {
	var labels []int
	var err error
	if off := s.offlineShard(); off >= 0 {
		err = fmt.Errorf("%w: shard %d is offline and full-graph inference needs the whole fleet", ErrShardUnavailable, off)
	} else {
		var ctx context.Context
		var cancel context.CancelFunc
		ctx, cancel, err = s.requestContext(r.enq)
		if err == nil {
			fan := time.Now()
			labels, _, err = s.sv.PredictIntoContext(ctx, r.x, ws)
			s.fanout.Observe(time.Since(fan).Nanoseconds())
			cancel()
			s.noteFullGraph(err)
		}
	}
	if err != nil {
		r.err = err
		if errors.Is(err, context.DeadlineExceeded) {
			s.deadlineExceeded.Add(1)
		}
	} else {
		copy(r.out, labels) // the workspace's label buffer is reused
		s.spillBytes.Add(ws.SpillBytes())
		for sh := range s.shardHalo {
			s.shardHalo[sh].Add(ws.ShardHaloBytes(sh))
		}
	}
	s.observe(err, r.enq, false)
	r.done <- struct{}{}
}

// noteFullGraph feeds one fan-out's outcome to the breakers: a success
// proved every shard (closing any half-open breaker), a failure blamed
// on a specific shard by core.ShardFault counts against that shard
// alone. Unattributable failures (validation, a deadline that poisoned
// the whole fleet at once) touch no breaker.
func (s *ShardedServer) noteFullGraph(err error) {
	if err == nil {
		for sh := range s.breaker {
			s.noteShardSuccess(sh)
		}
		return
	}
	var sf *core.ShardFault
	if errors.As(err, &sf) {
		s.noteShardError(sf.Shard, err)
	}
}

// noteShardError counts one shard-attributed failure. Enclave loss is
// unambiguous and trips the breaker immediately; other faults trip it
// after BreakerThreshold consecutive failures. Outage echoes
// (ErrShardUnavailable) and deadline/cancellation errors never count —
// tripping a healthy shard because a client's deadline was tight would
// turn load into an outage.
func (s *ShardedServer) noteShardError(sh int, err error) {
	switch {
	case errors.Is(err, ErrShardUnavailable),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return
	case errors.Is(err, enclave.ErrEnclaveLost):
		s.tripShard(sh, err)
	default:
		if int(s.fails[sh].Add(1)) >= s.cfg.BreakerThreshold {
			s.tripShard(sh, err)
		}
	}
}

// noteShardSuccess resets the shard's consecutive-failure count and
// closes a half-open breaker: the recovered shard answered a real query,
// probation is over.
func (s *ShardedServer) noteShardSuccess(sh int) {
	s.fails[sh].Store(0)
	s.breaker[sh].CompareAndSwap(breakerHalfOpen, breakerClosed)
}

// tripShard opens shard sh's breaker (first trip wins), takes the shard
// out of admission, aborts in-flight full-graph passes so no barrier
// hangs waiting for a dead enclave, and starts the shard's background
// recovery loop.
func (s *ShardedServer) tripShard(sh int, cause error) {
	if !s.breaker[sh].CompareAndSwap(breakerClosed, breakerOpen) &&
		!s.breaker[sh].CompareAndSwap(breakerHalfOpen, breakerOpen) {
		return // already open: its recovery loop is running
	}
	s.trippedAt[sh].Store(time.Now().UnixNano())
	s.avail[sh].Store(false)
	s.abortFullGraph(fmt.Errorf("%w: shard %d breaker tripped: %w", ErrShardUnavailable, sh, cause))
	s.recordEvent(obs.SpanFault, sh, 0)
	s.healthWG.Add(1)
	go s.recoverLoop(sh)
}

// recoverLoop drives one tripped shard back to serving: jittered
// exponential backoff between attempts, each attempt a full
// RecoverShard (re-seal, re-calibrate, rejoin every worker workspace)
// plus replacement node-query workspaces planned against the fresh
// enclave. Runs until recovery succeeds or the server closes.
func (s *ShardedServer) recoverLoop(sh int) {
	defer s.healthWG.Done()
	backoff := s.cfg.RecoveryBackoff
	maxBackoff := 64 * s.cfg.RecoveryBackoff
	for attempt := 0; ; attempt++ {
		d := backoff + s.jitter(uint64(sh)<<32|uint64(attempt), backoff)
		select {
		case <-s.stop:
			return
		case <-time.After(d):
		}
		if s.tryRecover(sh) {
			return
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// tryRecover attempts one recovery round for shard sh. It fails (to be
// retried under backoff) when a full-graph pass is still draining or
// the re-seal itself fails. On success the shard re-enters admission
// half-open.
func (s *ShardedServer) tryRecover(sh int) bool {
	if err := s.sv.RecoverShard(sh, s.workspaces...); err != nil {
		return false
	}
	if s.subs != nil {
		fresh := make([]*core.SubgraphWorkspace, len(s.subs))
		for w := range s.subs {
			sw, err := s.sv.Shard(sh).PlanSubgraphWith(s.cfg.NodeQuery.MaxSeeds, s.cfg.NodeQuery.Subgraph(), s.cfg.Plan)
			if err != nil {
				for _, f := range fresh {
					if f != nil {
						f.Release()
					}
				}
				return false
			}
			fresh[w] = sw
		}
		old := make([]*core.SubgraphWorkspace, len(s.subs))
		for w := range s.subs {
			old[w] = s.subs[w][sh].Swap(fresh[w])
		}
		// Workers load the workspace pointer inside their per-shard
		// inflight window, so once the count drains no worker can still
		// hold one of the swapped-out workspaces.
		for s.nodeInflight[sh].Load() != 0 {
			time.Sleep(50 * time.Microsecond)
		}
		for _, o := range old {
			if o != nil {
				o.Release()
			}
		}
	}
	s.restarts[sh].Add(1)
	s.fails[sh].Store(0)
	s.breaker[sh].Store(breakerHalfOpen)
	s.avail[sh].Store(true)
	s.recordEvent(obs.SpanRecover, sh, time.Now().UnixNano()-s.trippedAt[sh].Load())
	return true
}

// jitter derives a deterministic delay in [0, base/2] from the server
// seed and a stream identifier, de-synchronising backoff schedules
// without nondeterminism: the same seed replays the same chaos run.
func (s *ShardedServer) jitter(stream uint64, base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	h := uint64(s.cfg.Seed)*0x9E3779B97F4A7C15 + stream
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return time.Duration(h % uint64(base/2+1))
}

// awaitShard reports whether shard sh is admitting node queries, waiting
// out up to Config.MaxRetries jittered exponential backoffs for a
// tripped shard to recover. Each wait is bounded by the request's
// remaining deadline and the server's shutdown.
func (s *ShardedServer) awaitShard(sh int, enq time.Time) bool {
	if s.avail[sh].Load() {
		return true
	}
	backoff := s.cfg.RecoveryBackoff
	for attempt := 0; attempt < s.cfg.MaxRetries; attempt++ {
		d := backoff + s.jitter(1<<48|uint64(sh)<<32|uint64(attempt), backoff)
		if dl := s.cfg.Deadline; dl > 0 {
			remaining := dl - time.Since(enq)
			if remaining <= 0 {
				return false
			}
			if d > remaining {
				d = remaining
			}
		}
		select {
		case <-s.stop:
			return false
		case <-time.After(d):
		}
		if s.avail[sh].Load() {
			return true
		}
		backoff *= 2
	}
	return s.avail[sh].Load()
}

// recordEvent stores one trace-less fault/recovery span (Rows carries the
// shard) when a flight-recorder ring is wired in.
func (s *ShardedServer) recordEvent(kind obs.SpanKind, sh int, dur int64) {
	ring := s.cfg.Trace
	if ring == nil || !ring.Enabled() {
		return
	}
	ring.Record(obs.Span{Kind: kind, Rows: int32(sh), Start: ring.Clock(), Dur: dur})
}

// answerNodeBatch serves one wake-up's node queries: per-request
// validation and routing first — out-of-range seeds fail individually
// and tripped owners are waited out under the retry policy, so one bad
// query never poisons its batch — then each shard's run is coalesced
// into shared extractions and answered on that shard's subgraph
// workspace, deadline-bounded, with the cross-shard rows the extraction
// touched accumulated as that shard's halo traffic. Queries answered
// while another shard is down count as degraded serving.
func (s *ShardedServer) answerNodeBatch(reqs []*request, w int, st *shardWorkerState) {
	n := s.sv.Nodes()
	for i := range st.byShard {
		st.byShard[i] = st.byShard[i][:0]
	}
	for _, r := range reqs {
		if !nodesInRange(r.nodes, n) {
			s.reject(r, core.ErrNodeOutOfRange)
			continue
		}
		sh, err := s.sv.RouteSeeds(r.nodes)
		if err != nil {
			s.reject(r, err)
			continue
		}
		if !s.awaitShard(sh, r.enq) {
			s.reject(r, fmt.Errorf("%w: shard %d owning node %d is offline", ErrShardUnavailable, sh, r.nodes[0]))
			continue
		}
		st.byShard[sh] = append(st.byShard[sh], r)
	}
	for sh := range st.byShard {
		run := st.byShard[sh]
		if len(run) == 0 {
			continue
		}
		st.cos[sh].pack(len(run),
			func(i int) []int { return run[i].nodes },
			func(i int, err error) {
				run[i].err = err
				s.observe(err, run[i].enq, true)
				run[i].done <- struct{}{}
			},
			func(idxs, union []int) {
				// The chunk shares one extraction; its deadline budget is
				// the oldest member's (requests are packed in arrival
				// order, so that is the first index).
				ctx, cancel, err := s.requestContext(run[idxs[0]].enq)
				var labels []int
				if err == nil {
					s.nodeInflight[sh].Add(1)
					sw := s.subs[w][sh].Load()
					var halo int64
					labels, halo, _, err = s.sv.PredictNodesAtContext(ctx, s.cfg.Features, union, sh, sw)
					s.nodeInflight[sh].Add(-1)
					cancel()
					if err != nil {
						s.noteShardError(sh, err)
					} else {
						s.noteShardSuccess(sh)
						s.shardHalo[sh].Add(halo)
					}
				}
				degraded := err == nil && s.offlineShard() >= 0
				for _, i := range idxs {
					r := run[i]
					if err != nil {
						r.err = err
						if errors.Is(err, context.DeadlineExceeded) {
							s.deadlineExceeded.Add(1)
						}
					} else {
						for k, u := range r.nodes {
							r.out[k] = labels[indexOf(union, u)]
						}
						if degraded {
							s.degraded.Add(1)
						}
					}
					s.observe(err, r.enq, true)
					r.done <- struct{}{}
				}
			})
	}
}

// reject completes one node request with an error.
func (s *ShardedServer) reject(r *request, err error) {
	r.err = err
	s.observe(err, r.enq, true)
	r.done <- struct{}{}
}

// ShardStats is a per-shard snapshot of the fleet's serving state: the
// availability flags, breaker states and restart counts, accumulated
// halo traffic, each shard enclave's EPC occupancy, the full-graph
// fan-out latency distribution and the summed transition ledger
// (PeakEPCBytes is the busiest single enclave — each shard has its own
// EPC).
type ShardStats struct {
	Shards    int
	Available []bool
	Breaker   []int32  // 0 closed, 1 open, 2 half-open
	Restarts  []uint64 // successful automatic recoveries per shard
	HaloBytes []int64  // accumulated boundary-activation bytes gathered per shard
	EPCUsed   []int64
	EPCFree   []int64
	EPCLimit  []int64

	Fanout obs.HistSnapshot // full-graph fan-out wall time, ns samples
	Ledger enclave.Ledger   // summed over shard enclaves
}

// ShardStats returns the current per-shard snapshot.
func (s *ShardedServer) ShardStats() ShardStats {
	shards := s.sv.Shards()
	st := ShardStats{
		Shards:    shards,
		Available: make([]bool, shards),
		Breaker:   make([]int32, shards),
		Restarts:  make([]uint64, shards),
		HaloBytes: make([]int64, shards),
		EPCUsed:   make([]int64, shards),
		EPCFree:   make([]int64, shards),
		EPCLimit:  make([]int64, shards),
		Fanout:    s.fanout.Snapshot(),
	}
	for i := 0; i < shards; i++ {
		st.Available[i] = s.avail[i].Load()
		st.Breaker[i] = s.breaker[i].Load()
		st.Restarts[i] = s.restarts[i].Load()
		st.HaloBytes[i] = s.shardHalo[i].Load()
		encl := s.sv.Shard(i).Enclave
		st.EPCUsed[i] = encl.EPCUsed()
		st.EPCFree[i] = encl.EPCFree()
		st.EPCLimit[i] = encl.EPCLimit()
		led := encl.Ledger()
		st.Ledger.ECalls += led.ECalls
		st.Ledger.OCalls += led.OCalls
		st.Ledger.BytesIn += led.BytesIn
		st.Ledger.BytesOut += led.BytesOut
		st.Ledger.PageSwaps += led.PageSwaps
		st.Ledger.TransitionNs += led.TransitionNs
		st.Ledger.TransferNs += led.TransferNs
		st.Ledger.PagingNs += led.PagingNs
		st.Ledger.ComputeNs += led.ComputeNs
		st.Ledger.AllocFailures += led.AllocFailures
		if led.PeakEPCBytes > st.Ledger.PeakEPCBytes {
			st.Ledger.PeakEPCBytes = led.PeakEPCBytes
		}
	}
	return st
}

// Stats returns a snapshot of the serving counters.
func (s *ShardedServer) Stats() Stats {
	return s.snapshot(s.start)
}

// Close stops accepting requests, waits for queued work to finish, stops
// the recovery loops, and releases every worker workspace across every
// shard enclave (workspaces are released here, not by the workers,
// because a recovery loop may hold them past queue drain). The fleet
// itself stays deployed. Idempotent; concurrent callers block until
// teardown completes.
func (s *ShardedServer) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		s.sendMu.Lock()
		close(s.reqs)
		s.sendMu.Unlock()
		s.wg.Wait()
		close(s.stop)
		s.healthWG.Wait()
		for _, ws := range s.workspaces {
			ws.Release()
		}
		for w := range s.subs {
			for sh := range s.subs[w] {
				if sw := s.subs[w][sh].Load(); sw != nil {
					sw.Release()
				}
			}
		}
	})
}
