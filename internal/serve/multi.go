package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/mat"
	"gnnvault/internal/registry"
)

// mrequest is one queued multi-vault inference: a request plus the vault
// ID it is routed to. A non-nil nodes marks a node-level query.
type mrequest struct {
	vault  string
	x      *mat.Matrix
	nodes  []int
	out    []int
	scores [][]float64 // non-nil marks a score query; one row per label
	err    error
	enq    time.Time
	done   chan struct{}
}

// MultiServer routes label queries across a fleet of vaults sharing one
// enclave. Workers pull requests off a single bounded queue and check
// workspaces out of a registry.Registry per request, so which vaults hold
// EPC at any moment follows the traffic: hot vaults keep cached
// workspaces (and stay on the allocation-free path), cold vaults pay a
// plan — and possibly evict an idle tenant — on their next request. The
// registry's Stats expose that churn.
type MultiServer struct {
	reg  *registry.Registry
	cfg  Config
	reqs chan *mrequest
	pool sync.Pool

	// sendMu lets Close wait out in-flight Predict sends before closing
	// the queue channel (same protocol as Server).
	sendMu sync.RWMutex
	closed atomic.Bool
	wg     sync.WaitGroup
	start  time.Time

	counters
}

// NewMulti starts a worker pool over the registry's vault fleet. Unlike
// New, nothing is planned up front: workspace residency is entirely
// demand-driven, so a fleet larger than the EPC starts instantly and pages
// vaults in as traffic arrives. The caller keeps ownership of the
// registry; Close stops the workers without closing it.
func NewMulti(reg *registry.Registry, cfg Config) *MultiServer {
	cfg = cfg.withDefaults()
	s := &MultiServer{
		reg:   reg,
		cfg:   cfg,
		reqs:  make(chan *mrequest, cfg.QueueDepth),
		start: time.Now(),
	}
	s.pool.New = func() any { return &mrequest{done: make(chan struct{}, 1)} }
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Predict enqueues one inference over x for the vault registered under
// vaultID and blocks until a worker answers. The returned slice is freshly
// allocated and owned by the caller. Safe for concurrent use; blocks for
// backpressure when the queue is full. Unknown vault IDs surface as
// registry.ErrUnknownVault.
func (s *MultiServer) Predict(vaultID string, x *mat.Matrix) ([]int, error) {
	req := s.pool.Get().(*mrequest)
	req.vault = vaultID
	req.x = x
	req.out = make([]int, x.Rows)
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	out, err := req.out, req.err
	req.x, req.out, req.err = nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PredictScores enqueues one inference over x for the vault registered
// under vaultID and blocks until a worker answers with the defended
// per-class posterior row and label for every input row. Fails with
// ErrScoresDisabled unless the server was started with
// Config.ExposeScores. Returned slices are freshly allocated and owned by
// the caller.
func (s *MultiServer) PredictScores(vaultID string, x *mat.Matrix) ([][]float64, []int, error) {
	if !s.cfg.ExposeScores {
		return nil, nil, ErrScoresDisabled
	}
	req := s.pool.Get().(*mrequest)
	req.vault = vaultID
	req.x = x
	req.out = make([]int, x.Rows)
	req.scores = make([][]float64, x.Rows)
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	scores, out, err := req.scores, req.out, req.err
	req.x, req.out, req.scores, req.err = nil, nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, nil, err
	}
	return scores, out, nil
}

// PredictNodesScores is PredictNodes for fleets exposing scores: one
// defended posterior row and label per requested node, served through the
// same coalesced subgraph extractions. Fails with ErrScoresDisabled
// unless the server was started with Config.ExposeScores.
func (s *MultiServer) PredictNodesScores(vaultID string, nodes []int) ([][]float64, []int, error) {
	if !s.cfg.ExposeScores {
		return nil, nil, ErrScoresDisabled
	}
	if len(nodes) == 0 {
		return [][]float64{}, []int{}, nil
	}
	req := s.pool.Get().(*mrequest)
	req.vault = vaultID
	req.x = nil
	req.nodes = nodes
	req.out = make([]int, len(nodes))
	req.scores = make([][]float64, len(nodes))
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	scores, out, err := req.scores, req.out, req.err
	req.vault, req.nodes, req.out, req.scores, req.err = "", nil, nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, nil, err
	}
	return scores, out, nil
}

// PredictNodes enqueues one node-level query for the vault registered
// under vaultID and blocks until a worker answers with one label per
// requested node. The registry must be configured for node queries and
// the vault enabled via registry.EnableNodeQueries; otherwise the request
// fails with registry.ErrNodeQueriesDisabled. Consecutive same-vault node
// queries drained in one worker wake-up are coalesced into shared
// subgraph extractions. nodes must not be mutated until PredictNodes
// returns; the returned slice is freshly allocated and owned by the
// caller.
func (s *MultiServer) PredictNodes(vaultID string, nodes []int) ([]int, error) {
	if len(nodes) == 0 {
		return []int{}, nil
	}
	req := s.pool.Get().(*mrequest)
	req.vault = vaultID
	req.x = nil
	req.nodes = nodes
	req.out = make([]int, len(nodes))
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	out, err := req.out, req.err
	req.x, req.nodes, req.out, req.err = nil, nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// worker drains the queue in micro-batches. Within a batch, consecutive
// requests for the same vault share one workspace checkout, so a burst of
// same-vault traffic pays the registry exactly once.
func (s *MultiServer) worker() {
	defer s.wg.Done()
	batch := make([]*mrequest, 0, s.cfg.MaxBatch)
	st := &mworkerState{
		full: make([]*mrequest, 0, s.cfg.MaxBatch),
		node: make([]*mrequest, 0, s.cfg.MaxBatch),
	}
	for {
		req, ok := <-s.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], req)
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		s.batches.Add(1)
		s.answerBatch(batch, st)
	}
}

// mworkerState is one multi-vault worker's reusable batch-splitting and
// seed-coalescing buffers.
type mworkerState struct {
	full []*mrequest
	node []*mrequest
	co   coalescer
}

// answerBatch serves one drained batch, grouping consecutive same-vault
// requests under a single workspace checkout. Within a same-vault run,
// full-graph requests share one Acquire and node queries share one
// AcquireSubgraph, their seed sets coalesced into as few extractions as
// the registry's MaxSeeds admits.
func (s *MultiServer) answerBatch(batch []*mrequest, st *mworkerState) {
	for i := 0; i < len(batch); {
		id := batch[i].vault
		j := i
		st.full = st.full[:0]
		st.node = st.node[:0]
		for ; j < len(batch) && batch[j].vault == id; j++ {
			if batch[j].nodes != nil {
				st.node = append(st.node, batch[j])
			} else {
				st.full = append(st.full, batch[j])
			}
		}
		i = j
		if len(st.full) > 0 {
			v, ws, err := s.reg.Acquire(id)
			if err != nil {
				for _, r := range st.full {
					s.answer(r, nil, err)
				}
			} else {
				for _, r := range st.full {
					var labels []int
					var perr error
					if r.scores != nil {
						var logits *mat.Matrix
						logits, labels, _, perr = v.PredictScoresInto(r.x, ws)
						if perr == nil {
							for k := range r.scores { // the machine's output view is reused
								r.scores[k] = s.cfg.defendedRow(logits.Row(k))
							}
						}
					} else {
						labels, _, perr = v.PredictInto(r.x, ws)
					}
					if perr == nil {
						s.spillBytes.Add(ws.SpillBytes())
					}
					s.answer(r, labels, perr)
				}
				s.reg.Release(id, ws)
			}
		}
		if len(st.node) > 0 {
			s.answerNodeRun(id, st)
		}
	}
}

// answerNodeRun serves one same-vault run of node queries under a single
// subgraph-workspace checkout.
func (s *MultiServer) answerNodeRun(id string, st *mworkerState) {
	v, ws, x, err := s.reg.AcquireSubgraph(id)
	if err != nil {
		for _, r := range st.node {
			s.answer(r, nil, err)
		}
		return
	}
	defer s.reg.ReleaseSubgraph(id, ws)
	if st.co.maxSeeds != ws.MaxSeeds() {
		st.co = newCoalescer(ws.MaxSeeds())
	}
	// Reject out-of-range seeds per request before packing, so one bad
	// query cannot fail the valid queries coalesced into its chunk.
	n := v.Nodes()
	valid := st.node[:0]
	for _, r := range st.node {
		if !nodesInRange(r.nodes, n) {
			s.answer(r, nil, core.ErrNodeOutOfRange)
			continue
		}
		valid = append(valid, r)
	}
	st.node = valid
	st.co.pack(len(st.node),
		func(i int) []int { return st.node[i].nodes },
		func(i int, err error) {
			s.answer(st.node[i], nil, err)
		},
		func(idxs, union []int) {
			// One score query in the chunk upgrades the whole extraction
			// to the scores variant; label-only requests still read just
			// their labels.
			wantScores := false
			for _, i := range idxs {
				if st.node[i].scores != nil {
					wantScores = true
					break
				}
			}
			var labels []int
			var logits *mat.Matrix
			var err error
			if wantScores {
				logits, labels, _, err = v.PredictNodesScoresInto(x, union, ws)
			} else {
				labels, _, err = v.PredictNodesInto(x, union, ws)
			}
			for _, i := range idxs {
				r := st.node[i]
				if err != nil {
					s.answer(r, nil, err)
					continue
				}
				for k, u := range r.nodes {
					j := indexOf(union, u)
					r.out[k] = labels[j]
					if r.scores != nil {
						r.scores[k] = s.cfg.defendedRow(logits.Row(j))
					}
				}
				s.observe(nil, r.enq, true)
				r.done <- struct{}{}
			}
		})
}

// answer completes one request with either labels or an error.
func (s *MultiServer) answer(r *mrequest, labels []int, err error) {
	if err != nil {
		r.err = err
	} else {
		copy(r.out, labels) // the workspace's label buffer is reused
	}
	s.observe(err, r.enq, r.nodes != nil)
	r.done <- struct{}{}
}

// Stats returns a snapshot of the serving counters. Scheduler-side
// counters (plans, evictions, per-vault residency) live in the registry's
// own Stats.
func (s *MultiServer) Stats() Stats {
	return s.snapshot(s.start)
}

// Close stops accepting requests and waits for queued work to finish.
// Workspace EPC is returned to the registry as each in-flight checkout is
// released; the registry itself (and the deployed vaults) remain usable.
// Idempotent.
func (s *MultiServer) Close() {
	if s.closed.Swap(true) {
		s.wg.Wait()
		return
	}
	s.sendMu.Lock()
	close(s.reqs)
	s.sendMu.Unlock()
	s.wg.Wait()
}
