package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"gnnvault/internal/mat"
	"gnnvault/internal/registry"
)

// mrequest is one queued multi-vault inference: a request plus the vault
// ID it is routed to.
type mrequest struct {
	vault string
	x     *mat.Matrix
	out   []int
	err   error
	enq   time.Time
	done  chan struct{}
}

// MultiServer routes label queries across a fleet of vaults sharing one
// enclave. Workers pull requests off a single bounded queue and check
// workspaces out of a registry.Registry per request, so which vaults hold
// EPC at any moment follows the traffic: hot vaults keep cached
// workspaces (and stay on the allocation-free path), cold vaults pay a
// plan — and possibly evict an idle tenant — on their next request. The
// registry's Stats expose that churn.
type MultiServer struct {
	reg  *registry.Registry
	cfg  Config
	reqs chan *mrequest
	pool sync.Pool

	// sendMu lets Close wait out in-flight Predict sends before closing
	// the queue channel (same protocol as Server).
	sendMu sync.RWMutex
	closed atomic.Bool
	wg     sync.WaitGroup
	start  time.Time

	counters
}

// NewMulti starts a worker pool over the registry's vault fleet. Unlike
// New, nothing is planned up front: workspace residency is entirely
// demand-driven, so a fleet larger than the EPC starts instantly and pages
// vaults in as traffic arrives. The caller keeps ownership of the
// registry; Close stops the workers without closing it.
func NewMulti(reg *registry.Registry, cfg Config) *MultiServer {
	cfg = cfg.withDefaults()
	s := &MultiServer{
		reg:   reg,
		cfg:   cfg,
		reqs:  make(chan *mrequest, cfg.QueueDepth),
		start: time.Now(),
	}
	s.pool.New = func() any { return &mrequest{done: make(chan struct{}, 1)} }
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Predict enqueues one inference over x for the vault registered under
// vaultID and blocks until a worker answers. The returned slice is freshly
// allocated and owned by the caller. Safe for concurrent use; blocks for
// backpressure when the queue is full. Unknown vault IDs surface as
// registry.ErrUnknownVault.
func (s *MultiServer) Predict(vaultID string, x *mat.Matrix) ([]int, error) {
	req := s.pool.Get().(*mrequest)
	req.vault = vaultID
	req.x = x
	req.out = make([]int, x.Rows)
	req.err = nil
	req.enq = time.Now()

	s.sendMu.RLock()
	if s.closed.Load() {
		s.sendMu.RUnlock()
		s.pool.Put(req)
		return nil, ErrClosed
	}
	s.requests.Add(1)
	s.reqs <- req
	s.sendMu.RUnlock()

	<-req.done
	out, err := req.out, req.err
	req.x, req.out, req.err = nil, nil, nil
	s.pool.Put(req)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// worker drains the queue in micro-batches. Within a batch, consecutive
// requests for the same vault share one workspace checkout, so a burst of
// same-vault traffic pays the registry exactly once.
func (s *MultiServer) worker() {
	defer s.wg.Done()
	batch := make([]*mrequest, 0, s.cfg.MaxBatch)
	for {
		req, ok := <-s.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], req)
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		s.batches.Add(1)
		s.answerBatch(batch)
	}
}

// answerBatch serves one drained batch, grouping consecutive same-vault
// requests under a single workspace checkout.
func (s *MultiServer) answerBatch(batch []*mrequest) {
	for i := 0; i < len(batch); {
		id := batch[i].vault
		j := i
		for j < len(batch) && batch[j].vault == id {
			j++
		}
		v, ws, err := s.reg.Acquire(id)
		if err != nil {
			for ; i < j; i++ {
				s.answer(batch[i], nil, err)
			}
			continue
		}
		for ; i < j; i++ {
			labels, _, perr := v.PredictInto(batch[i].x, ws)
			s.answer(batch[i], labels, perr)
		}
		s.reg.Release(id, ws)
	}
}

// answer completes one request with either labels or an error.
func (s *MultiServer) answer(r *mrequest, labels []int, err error) {
	if err != nil {
		r.err = err
	} else {
		copy(r.out, labels) // the workspace's label buffer is reused
	}
	s.observe(err, r.enq)
	r.done <- struct{}{}
}

// Stats returns a snapshot of the serving counters. Scheduler-side
// counters (plans, evictions, per-vault residency) live in the registry's
// own Stats.
func (s *MultiServer) Stats() Stats {
	return s.snapshot(s.start)
}

// Close stops accepting requests and waits for queued work to finish.
// Workspace EPC is returned to the registry as each in-flight checkout is
// released; the registry itself (and the deployed vaults) remain usable.
// Idempotent.
func (s *MultiServer) Close() {
	if s.closed.Swap(true) {
		s.wg.Wait()
		return
	}
	s.sendMu.Lock()
	close(s.reqs)
	s.sendMu.Unlock()
	s.wg.Wait()
}
