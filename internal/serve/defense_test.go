package serve

import (
	"errors"
	"math"
	"testing"
	"time"

	"gnnvault/internal/enclave"
)

// TestDefendedRowPreservesArgmax sweeps rounding digits × top-k over
// logit rows including near-ties: whatever the defense does to the
// posterior, the argmax — and therefore the served label — must not move.
func TestDefendedRowPreservesArgmax(t *testing.T) {
	rows := [][]float64{
		{2.0, 1.0, 0.5, -1.0},
		{0.0, 0.0, 0.0, 0.0},                  // exact four-way tie
		{1.0, 1.0 - 1e-12, 1.0 - 1e-9, 0.0},   // near-tie at the top
		{-5.0, -5.0 + 1e-13, -4.999, -5.0001}, // near-tie among negatives
		{10.0, -10.0, 0.0, 9.9999},
		{0.30103, 0.30102, 0.30101, 0.301},
	}
	for _, digits := range []int{0, 1, 2, 3, 6} {
		for _, topk := range []int{0, 1, 2, 3, 4} {
			cfg := Config{RoundDigits: digits, TopK: topk}
			for ri, logits := range rows {
				want := argmaxRow(logits)
				got := cfg.defendedRow(logits)
				if len(got) != len(logits) {
					t.Fatalf("row %d: defended width %d", ri, len(got))
				}
				if g := argmaxRow(got); g != want {
					t.Fatalf("digits=%d topk=%d row %d: argmax moved %d → %d (%v)",
						digits, topk, ri, want, g, got)
				}
				zeros := 0
				for _, v := range got {
					if v < 0 || v > 1+1e-9 || math.IsNaN(v) {
						t.Fatalf("digits=%d topk=%d row %d: value %v outside [0,1]", digits, topk, ri, v)
					}
					if v == 0 {
						zeros++
					}
				}
				if topk > 0 && topk < len(logits) && zeros < len(logits)-topk {
					t.Fatalf("digits=%d topk=%d row %d: only %d entries zeroed (%v)",
						digits, topk, ri, zeros, got)
				}
			}
		}
	}
}

// TestDefendedRowRoundingCoarsens checks the defense does something: at 1
// digit every entry must sit on the 0.1 grid.
func TestDefendedRowRoundingCoarsens(t *testing.T) {
	got := Config{RoundDigits: 1}.defendedRow([]float64{1.3, 0.2, -0.7})
	for i, v := range got {
		scaled := v * 10
		if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
			t.Fatalf("entry %d = %v not on the 0.1 grid (%v)", i, v, got)
		}
	}
}

// TestRateLimiterTypedError pins the contract the registry relies on:
// throttling is never confusable with EPC exhaustion.
func TestRateLimiterTypedError(t *testing.T) {
	lim := newLimiter(RateLimit{Budget: 10})
	if err := lim.allow("a", 10); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := lim.allow("a", 1)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over budget: %v, want ErrRateLimited", err)
	}
	if errors.Is(err, enclave.ErrEPCExhausted) {
		t.Fatal("ErrRateLimited must not match enclave.ErrEPCExhausted")
	}
	if errors.Is(enclave.ErrEPCExhausted, ErrRateLimited) {
		t.Fatal("enclave.ErrEPCExhausted must not match ErrRateLimited")
	}
	// Budgets are per client: a fresh identity is unaffected.
	if err := lim.allow("b", 10); err != nil {
		t.Fatalf("fresh client: %v", err)
	}
	// A rejected request charges nothing: client b still holds 0 spent + 10 cap.
	if err := lim.allow("b", 11); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over budget: %v", err)
	}
}

// TestRateLimiterRefill drives the token bucket on a fake clock.
func TestRateLimiterRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	lim := newLimiter(RateLimit{PerSec: 10, Burst: 20})
	lim.now = func() time.Time { return now }

	if err := lim.allow("c", 20); err != nil {
		t.Fatalf("burst: %v", err)
	}
	if err := lim.allow("c", 1); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("empty bucket: %v, want ErrRateLimited", err)
	}
	now = now.Add(500 * time.Millisecond) // +5 tokens
	if err := lim.allow("c", 5); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if err := lim.allow("c", 1); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("bucket drained again: %v", err)
	}
	now = now.Add(time.Hour) // refill clamps at Burst
	if err := lim.allow("c", 21); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("cost above Burst: %v, want ErrRateLimited", err)
	}
	if err := lim.allow("c", 20); err != nil {
		t.Fatalf("full bucket: %v", err)
	}
}

// TestServerScoresSurface runs the defended scores path end to end on the
// single-vault server: labels equal the label-only path, each score row's
// argmax equals its label, and a label-only server refuses score queries
// with the typed error.
func TestServerScoresSurface(t *testing.T) {
	ds, v := testVault(t)
	s, err := New(v, Config{Workers: 2, ExposeScores: true, RoundDigits: 2, TopK: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	want, err := s.Predict(ds.X)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	scores, labels, err := s.PredictScores(ds.X)
	if err != nil {
		t.Fatalf("PredictScores: %v", err)
	}
	if len(scores) != ds.Graph.N() {
		t.Fatalf("scores rows %d, want %d", len(scores), ds.Graph.N())
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d", i, labels[i], want[i])
		}
		if g := argmaxRow(scores[i]); g != want[i] {
			t.Fatalf("argmax(scores[%d]) = %d, label %d", i, g, want[i])
		}
	}

	labelOnly, err := New(v, Config{Workers: 1})
	if err != nil {
		t.Fatalf("New(label-only): %v", err)
	}
	defer labelOnly.Close()
	if _, _, err := labelOnly.PredictScores(ds.X); !errors.Is(err, ErrScoresDisabled) {
		t.Fatalf("label-only PredictScores: %v, want ErrScoresDisabled", err)
	}
	if _, _, err := labelOnly.PredictNodesScores([]int{1}); !errors.Is(err, ErrScoresDisabled) {
		t.Fatalf("label-only PredictNodesScores: %v, want ErrScoresDisabled", err)
	}
}

// TestServerNodeScoresSurface checks the coalesced subgraph scores path,
// including a mixed batch of label and score node queries.
func TestServerNodeScoresSurface(t *testing.T) {
	ds, v := testVault(t)
	s, err := New(v, Config{Workers: 1, NodeQuery: nodeQueryCfg(), Features: ds.X, ExposeScores: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	seeds := []int{3, 99, 280}
	want := expectedNodeLabels(t, v, ds.X, seeds)
	scores, labels, err := s.PredictNodesScores(seeds)
	if err != nil {
		t.Fatalf("PredictNodesScores: %v", err)
	}
	for i := range seeds {
		if labels[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d", i, labels[i], want[i])
		}
		if g := argmaxRow(scores[i]); g != want[i] {
			t.Fatalf("argmax(scores[%d]) = %d, label %d", i, g, want[i])
		}
	}
	// Label-only node queries still work beside score queries.
	plain, err := s.PredictNodes(seeds)
	if err != nil {
		t.Fatalf("PredictNodes: %v", err)
	}
	for i := range seeds {
		if plain[i] != want[i] {
			t.Fatalf("plain label[%d] = %d, want %d", i, plain[i], want[i])
		}
	}
}
