package gnnvault_test

import (
	"sync"
	"testing"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/substitute"
)

// Shared trained state so per-query benchmarks do not retrain per run.
var (
	benchOnce  sync.Once
	benchDS    *datasets.Dataset
	benchBB    *core.Backbone
	benchOrig  *core.Backbone
	benchVault map[core.RectifierDesign]*core.Vault
)

func setupBench(tb testing.TB) {
	benchOnce.Do(func() {
		benchDS = datasets.Load("cora")
		train := core.TrainConfig{Epochs: 60, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
		spec := core.SpecForDataset("cora")
		benchOrig = core.TrainOriginal(benchDS, spec, train)
		benchBB = core.TrainBackbone(benchDS, spec, substitute.KindKNN,
			substitute.KNN(benchDS.X, 2), train)
		benchVault = map[core.RectifierDesign]*core.Vault{}
		for _, design := range core.Designs {
			rec := core.TrainRectifier(benchDS, benchBB, design, train)
			v, err := core.Deploy(benchBB, rec, benchDS.Graph, enclave.DefaultCostModel())
			if err != nil {
				tb.Fatalf("deploy %s: %v", design, err)
			}
			benchVault[design] = v
		}
	})
}

func deployedVault(tb testing.TB, design core.RectifierDesign) (*datasets.Dataset, *core.Vault) {
	setupBench(tb)
	return benchDS, benchVault[design]
}

func trainedOriginal(tb testing.TB) (*datasets.Dataset, *core.Backbone) {
	setupBench(tb)
	return benchDS, benchOrig
}
