package gnnvault_test

import (
	"fmt"
	"runtime"
	"testing"

	"gnnvault/internal/core"
)

// tiledBenchBudget is the acceptance bound: a real SGX1 EPC is 96 MB, of
// which persistent residents (rectifier params + private CSR) take their
// share at deploy time; 64 MB is a comfortable per-workspace budget that
// the 200k-node untiled plan (~307 MB) exceeds almost 5×.
const tiledBenchBudget = 64 << 20

// BenchmarkTiledFullGraph measures full-graph PredictInto through a
// fused, tile-streamed plan admitted under a 64 MB EPC budget, across the
// same power-law graphs as the subgraph sweep. The plan asks for
// GOMAXPROCS tile workers — the budget math divides the same 64 MB across
// the pool's staging tiles, so admission is unchanged while multi-core
// hosts stream tiles in parallel (single-core hosts degrade to the serial
// path). Compare against BenchmarkFullGraphNodeQuery (the untiled
// baseline, inadmissible on real EPCs beyond ~60k nodes): "epcB" must
// stay ≤ the budget, and the hot path stays allocation-free.
func BenchmarkTiledFullGraph(b *testing.B) {
	for _, n := range subgraphBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			st := subgraphBenchVault(b, n)
			ws, err := st.v.PlanWith(st.v.Nodes(), core.PlanConfig{
				EPCBudgetBytes: tiledBenchBudget,
				Workers:        runtime.GOMAXPROCS(0),
			})
			if err != nil {
				b.Fatalf("PlanWith: %v", err)
			}
			defer ws.Release()
			if ws.EnclaveBytes() > tiledBenchBudget {
				b.Fatalf("tiled plan charged %d bytes, budget %d", ws.EnclaveBytes(), tiledBenchBudget)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := st.v.PredictInto(st.ds.X, ws); err != nil {
					b.Fatalf("PredictInto: %v", err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(ws.EnclaveBytes()), "epcB")
			b.ReportMetric(float64(ws.TileRows()), "tileRows")
			b.ReportMetric(float64(ws.TileWorkers()), "tileW")
			b.ReportMetric(float64(ws.SpillBytes()), "spillB")
		})
	}
}
