# GNNVault build/verify/bench entry points. Everything is plain `go`
# underneath; the targets just fix the flags.

GO ?= go

.PHONY: build test race bench bench-json fuzz-smoke chaos-smoke vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The headline serving benchmarks (full-graph vs subgraph node queries,
# tiled vs untiled full-graph plans).
bench:
	$(GO) test -run '^$$' -bench 'SubgraphPredict|FullGraphNodeQuery|TiledFullGraph|VaultPredictInto|RegistryServe' -benchmem .

# The perf trajectory tracked across PRs, one JSON artifact per serving
# surface: BENCH_subgraph.json (node-query latency sweep), BENCH_core.json
# (full-graph PredictInto, untiled vs tiled), BENCH_serve.json (registry
# serving under EPC pressure), BENCH_exec.json (the shared forward engine:
# fusion × tiling × tile-parallelism × precision), BENCH_precision.json
# (calibrated fp64/fp32/int8 tiled plans on trained vaults), and
# BENCH_attack.json (link-stealing AUC and extraction fidelity per serving
# defense, priced against throughput — checked against the committed
# ceilings in ci/attack_thresholds.json), BENCH_obs.json (flight-
# recorder overhead, no-op vs live span ring — gated at ≤5% by -obs-check),
# and BENCH_shard.json (multi-enclave shard fleet: full-graph throughput,
# p99, and halo traffic vs shard count at a fixed per-shard EPC budget).
# Override SIZES for bigger graphs, e.g. `make bench-json SIZES=100000,200000`.
SIZES ?= 20000,50000
bench-json:
	$(GO) run ./cmd/experiments -run ext-subgraph -epochs 3 -sizes $(SIZES) -bench-out BENCH_subgraph.json
	$(GO) run ./cmd/experiments -run ext-core -epochs 3 -bench-out BENCH_core.json
	$(GO) run ./cmd/experiments -run ext-serve -epochs 3 -bench-out BENCH_serve.json
	$(GO) run ./cmd/experiments -run ext-exec -sizes $(SIZES) -bench-out BENCH_exec.json
	$(GO) run ./cmd/experiments -run ext-precision -sizes $(SIZES) -bench-out BENCH_precision.json
	$(GO) run ./cmd/experiments -run ext-attack -epochs 30 -bench-out BENCH_attack.json -attack-check ci/attack_thresholds.json
	$(GO) run ./cmd/experiments -run ext-obs -epochs 3 -bench-out BENCH_obs.json -obs-check
	$(GO) run ./cmd/experiments -run ext-shard -epochs 3 -sizes $(SIZES) -bench-out BENCH_shard.json

# Short fuzz passes over the engine and attack-surface invariants:
# induced-subgraph extraction, tiled-vs-direct execution equivalence,
# reduced-precision (fp32/int8) accuracy + within-tier bit-identity,
# sharded-vs-single-enclave bit-identity across fuzzed shapes × shard
# counts × precisions, and the attack math (AUC/Fidelity in [0,1], no
# panics) under degenerate observation surfaces.
# The chaos regression: seeded shard kills (ECALL-abort storms and
# enclave loss) under a concurrent /predict + /predict_nodes + /metrics
# client mix, plus the availability-flip race, all under the race
# detector — no deadlocks, counters reconcile, post-recovery answers
# stay bit-identical.
chaos-smoke:
	$(GO) test -race -run 'TestShardedChaosHammer|TestSetShardAvailableMidPass|TestShardedBreakerTripAndRecover' ./internal/serve/

FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzInducedSubgraph -fuzztime $(FUZZTIME) ./internal/subgraph/
	$(GO) test -run '^$$' -fuzz FuzzTiledExec -fuzztime $(FUZZTIME) ./internal/exec/
	$(GO) test -run '^$$' -fuzz FuzzPrecision -fuzztime $(FUZZTIME) ./internal/exec/
	$(GO) test -run '^$$' -fuzz FuzzShardedExec -fuzztime $(FUZZTIME) ./internal/exec/
	$(GO) test -run '^$$' -fuzz FuzzAttackSurface -fuzztime $(FUZZTIME) ./internal/attack/
