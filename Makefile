# GNNVault build/verify/bench entry points. Everything is plain `go`
# underneath; the targets just fix the flags.

GO ?= go

.PHONY: build test race bench bench-json fuzz-smoke vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The headline serving benchmarks (full-graph vs subgraph node queries).
bench:
	$(GO) test -run '^$$' -bench 'SubgraphPredict|FullGraphNodeQuery|VaultPredictInto|RegistryServe' -benchmem .

# BENCH_subgraph.json: the node-query latency sweep tracked across PRs.
# Override SIZES for bigger graphs, e.g. `make bench-json SIZES=100000,200000`.
SIZES ?= 20000,50000
bench-json:
	$(GO) run ./cmd/experiments -run ext-subgraph -epochs 3 -sizes $(SIZES) -bench-out BENCH_subgraph.json

# Short fuzz pass over the induced-subgraph extraction invariant.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzInducedSubgraph -fuzztime $(FUZZTIME) ./internal/subgraph/
