package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/enclave"
	"gnnvault/internal/serve"
	"gnnvault/internal/substitute"
)

// cmdServe trains and deploys a vault, then serves a synthetic stream of
// concurrent label queries through the batched worker pool, reporting
// throughput, latency, and batching statistics — the steady-state serving
// story the execution-plan refactor exists for.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dataset := fs.String("dataset", "cora", "built-in dataset name")
	design := fs.String("design", "parallel", "rectifier design: parallel|series|cascaded")
	sub := fs.String("sub", "knn", "substitute graph: knn|cosine|random|dnn")
	epochs := fs.Int("epochs", 100, "training epochs")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 2, "inference workers (each pre-plans a workspace)")
	batch := fs.Int("batch", 8, "max requests coalesced per worker wake-up")
	clients := fs.Int("clients", 8, "concurrent synthetic clients")
	requests := fs.Int("requests", 25, "requests per client")
	fs.Parse(args) //nolint:errcheck

	ds := loadDataset(*dataset)
	cfg := core.PipelineConfig{
		Spec:    core.SpecForDataset(*dataset),
		Design:  core.RectifierDesign(*design),
		SubKind: substitute.Kind(*sub),
		KNNK:    2,
		Train:   core.TrainConfig{Epochs: *epochs, LR: 0.01, WeightDecay: 5e-4, Seed: *seed},
	}
	fmt.Printf("training GNNVault on %s (%s rectifier) …\n", *dataset, cfg.Design)
	res := core.RunPipeline(ds, cfg)
	vault, err := core.Deploy(res.Backbone, res.Rectifier, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		fmt.Fprintln(os.Stderr, "deploy failed:", err)
		os.Exit(1)
	}

	if *workers <= 0 {
		*workers = 2 // serve.Config's default, surfaced so the banner is honest
	}
	srv, err := serve.New(vault, serve.Config{Workers: *workers, MaxBatch: *batch})
	if err != nil {
		fmt.Fprintln(os.Stderr, "server start failed:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("serving with %d workers (EPC in use %.2f MB of %d MB), %d clients × %d requests\n",
		*workers, float64(vault.Enclave.EPCUsed())/(1<<20), vault.Enclave.EPCLimit()>>20,
		*clients, *requests)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, *clients)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < *requests; r++ {
				if _, err := srv.Predict(ds.X); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fmt.Fprintln(os.Stderr, "serving error:", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	st := srv.Stats()
	fmt.Printf("\nserved %d requests in %v\n", st.Completed, wall.Round(time.Millisecond))
	fmt.Printf("  throughput  %.1f req/s (%.1f req/s over uptime)\n",
		float64(st.Completed)/wall.Seconds(), st.Throughput)
	fmt.Printf("  latency     avg %v, max %v\n",
		st.AvgLatency.Round(time.Microsecond), st.MaxLatency.Round(time.Microsecond))
	fmt.Printf("  batching    %d wake-ups, %.2f requests per batch\n", st.Batches, st.AvgBatch)
	fmt.Printf("  errors      %d\n", st.Errors)
}
