package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/obs"
	"gnnvault/internal/registry"
	"gnnvault/internal/serve"
	"gnnvault/internal/substitute"
)

// vaultInfo describes one deployed member of the serving fleet.
type vaultInfo struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	Design  string `json:"design"`
	Nodes   int    `json:"nodes"`
	Params  int    `json:"rectifier_params"`
}

// fleet is the multi-vault serving state: one enclave, one registry, the
// deployed vaults, and each dataset's public features for query routing.
type fleet struct {
	encl   *enclave.Enclave
	reg    *registry.Registry
	vaults []vaultInfo
	data   map[string]*datasets.Dataset
	// nodeQueries reports whether the fleet serves the subgraph
	// node-query path (-hops > 0).
	nodeQueries bool
}

// cmdServe trains and deploys a fleet of vaults — every requested dataset ×
// design pair — into one shared enclave behind the EPC-aware registry, then
// serves label queries through the routed worker pool: either a synthetic
// concurrent stream (default) or an HTTP/JSON API (-http). Lowering -epc-mb
// below the fleet's working set makes the scheduler's plan/evict churn
// visible in the reported stats.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dataset := fs.String("dataset", "cora", "comma-separated built-in dataset names")
	design := fs.String("design", "parallel", "comma-separated rectifier designs: parallel|series|cascaded")
	sub := fs.String("sub", "knn", "substitute graph: knn|cosine|random|dnn")
	epochs := fs.Int("epochs", 100, "training epochs")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 2, "inference workers shared across the fleet")
	batch := fs.Int("batch", 8, "max requests coalesced per worker wake-up")
	shards := fs.Int("shards", 1, "shard the vault across this many enclaves: the private CSR splits at nnz-balanced row boundaries, each shard sealed in its own enclave with its own -epc-mb budget, coupled through halo-exchange SpMM (>1 requires a single dataset × design; label-only)")
	wsPerVault := fs.Int("ws-per-vault", 2, "max concurrent inference workspaces per vault")
	epcMB := fs.Int64("epc-mb", 96, "enclave EPC capacity in MB (lower it to force eviction churn)")
	epcBudgetMB := fs.Int64("epc-budget-mb", 0, "per-workspace EPC budget in MB: plans execute tile-streamed under this bound (0 = classic untiled plans)")
	planWorkers := fs.Int("plan-workers", 0, "tile workers per budgeted plan: the enclave streams each op's tiles across this many threads, dividing the per-workspace budget across their staging tiles (0 or 1 = serial ECALL)")
	precision := fs.String("precision", "fp64", "in-enclave kernel precision: fp64|fp32|int8 — reduced tiers shrink EPC, spill and transfer by the element width; int8 plans are calibrated against the fp64 reference and refused below the agreement floor")
	minAgree := fs.Float64("min-agreement", 0, "argmax-agreement floor for reduced-precision plans on the calibration batch (0 = default 0.99)")
	clients := fs.Int("clients", 8, "concurrent synthetic clients")
	requests := fs.Int("requests", 25, "requests per client")
	httpAddr := fs.String("http", "", "serve the HTTP/JSON API on this address (e.g. :8080) instead of the synthetic stream")
	hops := fs.Int("hops", 0, "enable node-level serving with this L-hop expansion depth (0 = full-graph only)")
	fanout := fs.Int("fanout", 10, "sampled neighbours per node per hop for node-level serving (0 = unlimited, exact L-hop)")
	maxSeeds := fs.Int("max-seeds", 16, "max seed nodes per coalesced subgraph extraction")
	exposeScores := fs.Bool("expose-scores", false, "serve per-class softmax posteriors alongside labels (widens the attack surface; label-only is the paper's default posture)")
	roundDigits := fs.Int("round-digits", 0, "round exposed scores to this many decimal digits, argmax-preserving (0 = exact scores)")
	topK := fs.Int("topk", 0, "expose only the K largest score entries per row, zeroing the rest (0 = all classes)")
	rateLimit := fs.Float64("rate-limit", 0, "per-client sustained answered-labels/second over the HTTP API (0 = unlimited)")
	rateBurst := fs.Int("rate-burst", 0, "per-client token-bucket capacity in labels (0 = derived from -rate-limit)")
	queryBudget := fs.Int("query-budget", 0, "per-client lifetime cap on total answered labels (0 = unlimited)")
	deadline := fs.Duration("deadline", 0, "per-request serving deadline on a shard fleet, enqueue to answer — expired requests fail with 503 and a Retry-After (0 = unbounded; sharded only)")
	maxRetries := fs.Int("max-retries", 0, "node-query admission retries while the owning shard's breaker is open, each a jittered backoff bounded by -deadline (sharded only)")
	chaosKills := fs.Int("chaos", 0, "inject this many seeded shard kills (alternating ECALL-abort storms and enclave loss) during the sharded synthetic stream and report breaker trips, restarts and time-to-recovery (requires -shards > 1, no -http)")
	metricsOn := fs.Bool("metrics", false, "record flight-recorder spans (per-op, ECALL, plan/evict) into a live telemetry ring; implied by -trace-buffer")
	traceBuffer := fs.Int("trace-buffer", 0, "span ring capacity behind GET /debug/trace (0 = 4096 when -metrics is set, else tracing off)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof on the HTTP API")
	fs.Parse(args) //nolint:errcheck

	if *workers <= 0 {
		*workers = 2 // serve.Config's default, surfaced so the banner is honest
	}
	var nq *registry.NodeQueryConfig
	if *hops > 0 {
		nq = &registry.NodeQueryConfig{Hops: *hops, Fanout: *fanout, MaxSeeds: *maxSeeds, Seed: uint64(*seed)}
	}
	prec, err := core.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}
	plan := core.PlanConfig{
		EPCBudgetBytes: *epcBudgetMB << 20,
		Workers:        *planWorkers,
		Precision:      prec,
		MinAgreement:   *minAgree,
	}
	// The flight-recorder ring doubles as the live span recorder for every
	// layer below: plan/evict events, per-query ECALL spans and per-op tile
	// timings all land in one buffer that /debug/trace reads back out.
	var ring *obs.Ring
	var recorder obs.Recorder
	if *metricsOn || *traceBuffer > 0 {
		capacity := *traceBuffer
		if capacity <= 0 {
			capacity = 4096
		}
		ring = obs.NewRing(capacity)
		recorder = ring
	}
	if *shards > 1 {
		var limit *serve.RateLimit
		if *rateLimit > 0 || *queryBudget > 0 {
			limit = &serve.RateLimit{PerSec: *rateLimit, Burst: *rateBurst, Budget: *queryBudget}
		}
		if *exposeScores {
			fmt.Fprintln(os.Stderr, "serve: -shards is label-only; -expose-scores is not supported on a shard fleet")
			os.Exit(2)
		}
		if *chaosKills > 0 && *httpAddr != "" {
			fmt.Fprintln(os.Stderr, "serve: -chaos drives the synthetic stream; it cannot be combined with -http")
			os.Exit(2)
		}
		runSharded(shardedServeConfig{
			dataset: *dataset, design: *design, sub: *sub,
			epochs: *epochs, seed: *seed, shards: *shards, epcMB: *epcMB,
			workers: *workers, batch: *batch, plan: plan, nq: nq,
			clients: *clients, requests: *requests,
			httpAddr: *httpAddr, limit: limit, precision: prec.String(),
			ring: ring, recorder: recorder, pprof: *pprofOn,
			deadline: *deadline, maxRetries: *maxRetries, chaos: *chaosKills,
		})
		return
	}
	if *deadline > 0 || *maxRetries > 0 || *chaosKills > 0 {
		fmt.Fprintln(os.Stderr, "serve: -deadline, -max-retries and -chaos apply to a shard fleet; set -shards > 1")
		os.Exit(2)
	}
	fl := buildFleet(*dataset, *design, *sub, *epochs, *seed, *epcMB, *wsPerVault, plan, nq, recorder)
	srv := serve.NewMulti(fl.reg, serve.Config{
		Workers:      *workers,
		MaxBatch:     *batch,
		ExposeScores: *exposeScores,
		RoundDigits:  *roundDigits,
		TopK:         *topK,
	})
	defer func() {
		srv.Close()
		fl.reg.Close()
	}()
	var limit *serve.RateLimit
	if *rateLimit > 0 || *queryBudget > 0 {
		limit = &serve.RateLimit{PerSec: *rateLimit, Burst: *rateBurst, Budget: *queryBudget}
	}

	mode := "untiled workspaces"
	if *epcBudgetMB > 0 {
		mode = fmt.Sprintf("tiled workspaces ≤ %d MB each", *epcBudgetMB)
	}
	if prec != core.PrecisionFP64 {
		mode += ", " + prec.String() + " enclave kernels"
	}
	fmt.Printf("fleet of %d vaults on one enclave (EPC %.2f MB used of %d MB), %d workers, %s\n",
		len(fl.vaults), float64(fl.encl.EPCUsed())/(1<<20), fl.encl.EPCLimit()>>20, *workers, mode)

	if *httpAddr != "" {
		runHTTP(*httpAddr, fl, srv, limit, prec.String(), ring, *pprofOn)
		return
	}
	runSyntheticStream(fl, srv, *clients, *requests)
}

// buildFleet trains one backbone per dataset and one rectifier per
// dataset × design pair, then deploys every pair into a single enclave
// measured over all rectifier identities. plan shapes every workspace the
// registry admits (EPC budget → tiled streaming); a non-nil nq
// additionally enables node-level (subgraph) serving on every GNN-backed
// vault.
func buildFleet(datasetCSV, designCSV string, sub string, epochs int, seed, epcMB int64, wsPerVault int, plan core.PlanConfig, nq *registry.NodeQueryConfig, rec obs.Recorder) *fleet {
	dsNames := splitCSV(datasetCSV)
	designs := splitCSV(designCSV)
	if len(dsNames) == 0 || len(designs) == 0 {
		fmt.Fprintln(os.Stderr, "serve: need at least one dataset and one design")
		os.Exit(2)
	}

	type trained struct {
		info vaultInfo
		bb   *core.Backbone
		rec  *core.Rectifier
		ds   *datasets.Dataset
	}
	var fleetMembers []trained
	var identities [][]byte
	data := map[string]*datasets.Dataset{}
	for _, name := range dsNames {
		ds := loadDataset(name)
		data[name] = ds
		train := core.TrainConfig{Epochs: epochs, LR: 0.01, WeightDecay: 5e-4, Seed: seed}
		spec := core.SpecForDataset(name)
		kind := substitute.Kind(sub)
		subGraph := substitute.Build(kind, ds.X, 2, ds.Graph.NumUndirectedEdges(), seed)
		fmt.Printf("training backbone on %s (%s substitute) …\n", name, kind)
		bb := core.TrainBackbone(ds, spec, kind, subGraph, train)
		for _, d := range designs {
			fmt.Printf("training %s rectifier on %s …\n", d, name)
			rec := core.TrainRectifier(ds, bb, core.RectifierDesign(d), train)
			fleetMembers = append(fleetMembers, trained{
				info: vaultInfo{
					ID:      name + "/" + d,
					Dataset: name,
					Design:  d,
					Nodes:   ds.Graph.N(),
					Params:  rec.NumParams(),
				},
				bb: bb, rec: rec, ds: ds,
			})
			identities = append(identities, rec.Identity())
		}
	}

	cost := enclave.DefaultCostModel()
	cost.EPCBytes = epcMB << 20
	encl := enclave.New(cost, identities...)
	reg := registry.New(encl, registry.Config{WorkspacesPerVault: wsPerVault, Plan: plan, NodeQuery: nq, Recorder: rec})
	fl := &fleet{encl: encl, reg: reg, data: data, nodeQueries: nq != nil}
	for _, m := range fleetMembers {
		v, err := core.DeployInto(encl, m.bb, m.rec, m.ds.Graph)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deploy %s failed: %v\n", m.info.ID, err)
			os.Exit(1)
		}
		// Calibration batch for reduced-precision plans: the dataset's own
		// public features — the same matrix every query passes in.
		if err := v.SetCalibrationFeatures(m.ds.X); err != nil {
			fmt.Fprintf(os.Stderr, "calibration features for %s failed: %v\n", m.info.ID, err)
			os.Exit(1)
		}
		if err := reg.Register(m.info.ID, v); err != nil {
			fmt.Fprintf(os.Stderr, "register %s failed: %v\n", m.info.ID, err)
			os.Exit(1)
		}
		if nq != nil {
			if err := reg.EnableNodeQueries(m.info.ID, m.ds.X); err != nil {
				fmt.Fprintf(os.Stderr, "enable node queries on %s failed: %v\n", m.info.ID, err)
				os.Exit(1)
			}
		}
		fl.vaults = append(fl.vaults, m.info)
	}
	return fl
}

// runSyntheticStream drives concurrent clients round-robin across the
// fleet and prints serving + scheduler statistics. With node-level
// serving enabled, every other request is a two-seed node query instead
// of a full-graph pass, exercising both paths through one queue.
func runSyntheticStream(fl *fleet, srv *serve.MultiServer, clients, requests int) {
	mix := ""
	if fl.nodeQueries {
		mix = " (50% node queries)"
	}
	fmt.Printf("synthetic stream: %d clients × %d requests across %d vaults%s\n",
		clients, requests, len(fl.vaults), mix)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				info := fl.vaults[(c+r)%len(fl.vaults)]
				// r alone picks the kind so the mix decorrelates from the
				// round-robin vault choice above.
				if fl.nodeQueries && r%2 == 1 {
					n := info.Nodes
					seeds := [2]int{(c*131 + r*17) % n, (c*257 + r*37 + 1) % n}
					if seeds[0] == seeds[1] {
						seeds[1] = (seeds[1] + 1) % n
					}
					if _, err := srv.PredictNodes(info.ID, seeds[:]); err != nil {
						errs <- fmt.Errorf("%s node query: %w", info.ID, err)
						return
					}
					continue
				}
				if _, err := srv.Predict(info.ID, fl.data[info.Dataset].X); err != nil {
					errs <- fmt.Errorf("%s: %w", info.ID, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fmt.Fprintln(os.Stderr, "serving error:", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	st := srv.Stats()
	rst := fl.reg.Stats()
	fmt.Printf("\nserved %d requests in %v\n", st.Completed, wall.Round(time.Millisecond))
	fmt.Printf("  throughput  %.1f req/s (%.1f req/s over uptime)\n",
		float64(st.Completed)/wall.Seconds(), st.Throughput)
	fmt.Printf("  latency     p50 %v, p95 %v, p99 %v, max %v\n",
		st.P50Latency.Round(time.Microsecond), st.P95Latency.Round(time.Microsecond),
		st.P99Latency.Round(time.Microsecond), st.MaxLatency.Round(time.Microsecond))
	printEndpointLatency("predict", st.FullLatency)
	printEndpointLatency("predict_nodes", st.NodeLatency)
	fmt.Printf("  batching    %d wake-ups, %.2f requests per batch\n", st.Batches, st.AvgBatch)
	fmt.Printf("  errors      %d\n", st.Errors)
	fmt.Printf("  scheduler   %d plans, %d evictions, %d/%d vaults resident\n",
		rst.Plans, rst.Evictions, rst.Resident, rst.Vaults)
	fmt.Printf("  enclave     %d ECALLs, %.2f MB in, %.2f MB out, %d page swaps\n",
		rst.Ledger.ECalls, float64(rst.Ledger.BytesIn)/(1<<20),
		float64(rst.Ledger.BytesOut)/(1<<20), rst.Ledger.PageSwaps)
	fmt.Printf("  spill       %.2f MB streamed through untrusted scratch\n",
		float64(st.SpillBytes)/(1<<20))
	fmt.Printf("  EPC         %.2f MB used of %d MB\n",
		float64(rst.EPCUsed)/(1<<20), rst.EPCLimit>>20)
}

// printEndpointLatency prints one endpoint's latency quantiles from its
// obs histogram snapshot, skipping endpoints that served nothing.
func printEndpointLatency(name string, s obs.HistSnapshot) {
	if s.Count == 0 {
		return
	}
	fmt.Printf("    %-14s %d requests, p50 %v, p99 %v\n", name, s.Count,
		time.Duration(s.Quantile(0.50)).Round(time.Microsecond),
		time.Duration(s.Quantile(0.99)).Round(time.Microsecond))
}

// splitCSV splits a comma-separated flag value, dropping empty items.
func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
