package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/registry"
	"gnnvault/internal/serve"
	"gnnvault/internal/subgraph"
)

// apiServer exposes the serving fleet over HTTP/JSON:
//
//	POST /predict        {"vault":"cora/parallel","nodes":[0,1,2]}  → labels (exact, full-graph)
//	POST /predict_nodes  {"vault":"cora/parallel","nodes":[0,1,2]}  → labels (sampled subgraph)
//	GET  /vaults                                                    → fleet catalog
//	GET  /stats                                                     → serving + scheduler + EPC counters
//
// /predict runs the exact full-graph pass over the vault's deployed
// dataset features; "nodes" selects which labels to return, defaulting to
// all. /predict_nodes (available when the fleet was started with -hops)
// answers through the subgraph engine: per-query cost is O(hops × fanout)
// instead of O(graph), at the documented sampling-accuracy trade-off.
// Only class labels ever leave the enclave, so labels are all the API can
// serve.
type apiServer struct {
	fl  *fleet
	srv *serve.MultiServer
}

// runHTTP serves the fleet API until the process is interrupted.
func runHTTP(addr string, fl *fleet, srv *serve.MultiServer) {
	api := &apiServer{fl: fl, srv: srv}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", api.handlePredict)
	mux.HandleFunc("POST /predict_nodes", api.handlePredictNodes)
	mux.HandleFunc("GET /vaults", api.handleVaults)
	mux.HandleFunc("GET /stats", api.handleStats)
	fmt.Printf("HTTP API on %s: POST /predict, POST /predict_nodes, GET /vaults, GET /stats\n", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "http server:", err)
		os.Exit(1)
	}
}

// predictRequest is the POST /predict payload.
type predictRequest struct {
	// Vault is the fleet member to query, "dataset/design".
	Vault string `json:"vault"`
	// Nodes are the node indices whose labels to return; empty means all.
	Nodes []int `json:"nodes"`
}

// predictResponse is the POST /predict answer.
type predictResponse struct {
	Vault     string  `json:"vault"`
	Nodes     []int   `json:"nodes,omitempty"`
	Labels    []int   `json:"labels"`
	LatencyMS float64 `json:"latency_ms"`
}

// lookupVault resolves a fleet member by ID and validates the requested
// node indices, writing the HTTP error itself when either check fails.
func (a *apiServer) lookupVault(w http.ResponseWriter, vaultID string, nodes []int) (*vaultInfo, bool) {
	var info *vaultInfo
	for i := range a.fl.vaults {
		if a.fl.vaults[i].ID == vaultID {
			info = &a.fl.vaults[i]
			break
		}
	}
	if info == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("%w: %q", registry.ErrUnknownVault, vaultID))
		return nil, false
	}
	for _, n := range nodes {
		if n < 0 || n >= info.Nodes {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("node %d out of range [0,%d)", n, info.Nodes))
			return nil, false
		}
	}
	return info, true
}

func (a *apiServer) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	info, ok := a.lookupVault(w, req.Vault, req.Nodes)
	if !ok {
		return
	}

	start := time.Now()
	labels, err := a.srv.Predict(info.ID, a.fl.data[info.Dataset].X)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	resp := predictResponse{
		Vault:     info.ID,
		Nodes:     req.Nodes,
		Labels:    labels,
		LatencyMS: float64(time.Since(start).Microseconds()) / 1e3,
	}
	if len(req.Nodes) > 0 {
		picked := make([]int, len(req.Nodes))
		for i, n := range req.Nodes {
			picked[i] = labels[n]
		}
		resp.Labels = picked
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePredictNodes serves POST /predict_nodes: node-level queries
// answered from sampled L-hop subgraphs. Requires the fleet to have been
// started with -hops > 0.
func (a *apiServer) handlePredictNodes(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if !a.fl.nodeQueries {
		httpError(w, http.StatusNotImplemented,
			fmt.Errorf("node-level serving disabled; restart with -hops > 0"))
		return
	}
	info, ok := a.lookupVault(w, req.Vault, req.Nodes)
	if !ok {
		return
	}
	if len(req.Nodes) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("predict_nodes needs a non-empty \"nodes\" list"))
		return
	}

	start := time.Now()
	labels, err := a.srv.PredictNodes(info.ID, req.Nodes)
	if err != nil {
		// Client-caused errors are 4xx — a 503 would invite retries of
		// requests that can never succeed.
		code := http.StatusServiceUnavailable
		if errors.Is(err, subgraph.ErrTooManySeeds) || errors.Is(err, core.ErrNodeOutOfRange) {
			code = http.StatusBadRequest
		}
		httpError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{
		Vault:     info.ID,
		Nodes:     req.Nodes,
		Labels:    labels,
		LatencyMS: float64(time.Since(start).Microseconds()) / 1e3,
	})
}

func (a *apiServer) handleVaults(w http.ResponseWriter, r *http.Request) {
	type vaultEntry struct {
		vaultInfo
		Resident   bool   `json:"resident"`
		Workspaces int    `json:"workspaces"`
		Requests   uint64 `json:"requests"`
		Plans      uint64 `json:"plans"`
		Evictions  uint64 `json:"evictions"`
	}
	rst := a.fl.reg.Stats()
	byID := map[string]registry.VaultStats{}
	for _, vs := range rst.PerVault {
		byID[vs.ID] = vs
	}
	out := make([]vaultEntry, 0, len(a.fl.vaults))
	for _, info := range a.fl.vaults {
		vs := byID[info.ID]
		out = append(out, vaultEntry{
			vaultInfo:  info,
			Resident:   vs.Resident,
			Workspaces: vs.Workspaces,
			Requests:   vs.Requests,
			Plans:      vs.Plans,
			Evictions:  vs.Evictions,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"vaults": out})
}

func (a *apiServer) handleStats(w http.ResponseWriter, r *http.Request) {
	st := a.srv.Stats()
	rst := a.fl.reg.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"serving": map[string]any{
			"requests":       st.Requests,
			"completed":      st.Completed,
			"errors":         st.Errors,
			"batches":        st.Batches,
			"avg_batch":      st.AvgBatch,
			"avg_latency_ms": float64(st.AvgLatency.Microseconds()) / 1e3,
			"max_latency_ms": float64(st.MaxLatency.Microseconds()) / 1e3,
			"throughput_rps": st.Throughput,
			"uptime_s":       st.Uptime.Seconds(),
		},
		"scheduler": map[string]any{
			"vaults":    rst.Vaults,
			"resident":  rst.Resident,
			"requests":  rst.Requests,
			"plans":     rst.Plans,
			"evictions": rst.Evictions,
		},
		"enclave": map[string]any{
			"epc_used_bytes":  rst.EPCUsed,
			"epc_free_bytes":  rst.EPCFree,
			"epc_limit_bytes": rst.EPCLimit,
			"epc_used_mb":     float64(rst.EPCUsed) / (1 << 20),
			"epc_limit_mb":    float64(rst.EPCLimit) / (1 << 20),
		},
	})
}

// writeJSON sends one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "http encode:", err)
	}
}

// httpError sends a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
