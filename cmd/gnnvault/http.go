package main

import (
	"fmt"
	"net/http"
	"os"

	"gnnvault/internal/mat"
	"gnnvault/internal/obs"
	"gnnvault/internal/serve"
)

// apiConfig assembles the shared serving surface (serve.API) from the
// fleet: the catalog, the per-vault feature matrices and the optional
// per-client rate limit. The HTTP handlers themselves live in
// internal/serve so that in-process clients — notably the privacy
// harness — exercise byte-identical endpoint behavior.
func apiConfig(fl *fleet, limit *serve.RateLimit, precision string, ring *obs.Ring, pprof bool) serve.APIConfig {
	vaults := make([]serve.APIVault, len(fl.vaults))
	for i, v := range fl.vaults {
		vaults[i] = serve.APIVault{
			ID:      v.ID,
			Dataset: v.Dataset,
			Design:  v.Design,
			Nodes:   v.Nodes,
			Params:  v.Params,
		}
	}
	byID := make(map[string]string, len(fl.vaults))
	for _, v := range fl.vaults {
		byID[v.ID] = v.Dataset
	}
	return serve.APIConfig{
		Vaults: vaults,
		Features: func(vaultID string) *mat.Matrix {
			ds := fl.data[byID[vaultID]]
			if ds == nil {
				return nil
			}
			return ds.X
		},
		NodeQueries: fl.nodeQueries,
		Limit:       limit,
		Precision:   precision,
		Trace:       ring,
		EnablePprof: pprof,
	}
}

// runHTTP serves the fleet API until the process is interrupted.
func runHTTP(addr string, fl *fleet, srv *serve.MultiServer, limit *serve.RateLimit, precision string, ring *obs.Ring, pprof bool) {
	api := serve.NewAPI(srv, fl.reg, apiConfig(fl, limit, precision, ring, pprof))
	extra := ""
	if ring != nil {
		extra += ", GET /debug/trace"
	}
	if pprof {
		extra += ", GET /debug/pprof/"
	}
	fmt.Printf("HTTP API on %s: POST /predict, POST /predict_nodes, GET /vaults, GET /stats, GET /metrics%s\n", addr, extra)
	if err := http.ListenAndServe(addr, api.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "http server:", err)
		os.Exit(1)
	}
}
