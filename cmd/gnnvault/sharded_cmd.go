package main

import (
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/mat"
	"gnnvault/internal/obs"
	"gnnvault/internal/registry"
	"gnnvault/internal/serve"
	"gnnvault/internal/substitute"
)

// shardedServeConfig carries the serve flags into the sharded path.
type shardedServeConfig struct {
	dataset, design, sub string
	epochs               int
	seed                 int64
	shards               int
	epcMB                int64
	workers, batch       int
	plan                 core.PlanConfig
	nq                   *registry.NodeQueryConfig
	clients, requests    int
	httpAddr             string
	limit                *serve.RateLimit
	precision            string
	ring                 *obs.Ring
	recorder             obs.Recorder
	pprof                bool
	deadline             time.Duration
	maxRetries           int
	chaos                int
}

// runSharded trains one dataset × design vault and deploys it across a
// multi-enclave shard fleet: the private CSR cut at nnz-balanced row
// boundaries, every shard sealed in its own enclave with its own -epc-mb
// budget. Queries are served through the shard-aware router — full-graph
// fan-outs stitched in seed order, node queries routed to the owning
// shard — so the admissible graph size scales with -shards while each
// enclave's EPC stays fixed.
func runSharded(cfg shardedServeConfig) {
	dsNames, designs := splitCSV(cfg.dataset), splitCSV(cfg.design)
	if len(dsNames) != 1 || len(designs) != 1 {
		fmt.Fprintln(os.Stderr, "serve: -shards > 1 serves a single dataset × design pair")
		os.Exit(2)
	}
	ds := loadDataset(dsNames[0])
	train := core.TrainConfig{Epochs: cfg.epochs, LR: 0.01, WeightDecay: 5e-4, Seed: cfg.seed}
	spec := core.SpecForDataset(dsNames[0])
	kind := substitute.Kind(cfg.sub)
	subGraph := substitute.Build(kind, ds.X, 2, ds.Graph.NumUndirectedEdges(), cfg.seed)
	fmt.Printf("training backbone on %s (%s substitute) …\n", dsNames[0], kind)
	bb := core.TrainBackbone(ds, spec, kind, subGraph, train)
	fmt.Printf("training %s rectifier on %s …\n", designs[0], dsNames[0])
	rec := core.TrainRectifier(ds, bb, core.RectifierDesign(designs[0]), train)

	cost := enclave.DefaultCostModel()
	cost.EPCBytes = cfg.epcMB << 20 // per shard: each enclave has its own EPC
	sv, err := core.DeploySharded(bb, rec, ds.Graph, cost, cfg.shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sharded deploy failed: %v\n", err)
		os.Exit(1)
	}
	defer sv.Undeploy()

	plan := cfg.plan
	plan.Recorder = cfg.recorder
	// -chaos reports per-outage recovery times from the fault/recover
	// spans, so it gets a trace ring even when -metrics is off.
	if cfg.ring == nil && cfg.chaos > 0 {
		cfg.ring = obs.NewRing(256)
	}
	srv, err := serve.NewSharded(sv, serve.Config{
		Workers:    cfg.workers,
		MaxBatch:   cfg.batch,
		Plan:       plan,
		NodeQuery:  cfg.nq,
		Features:   ds.X,
		Deadline:   cfg.deadline,
		MaxRetries: cfg.maxRetries,
		Seed:       cfg.seed,
		Trace:      cfg.ring,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sharded serve failed: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	info := vaultInfo{
		ID:      dsNames[0] + "/" + designs[0],
		Dataset: dsNames[0],
		Design:  designs[0],
		Nodes:   ds.Graph.N(),
		Params:  rec.NumParams(),
	}
	st := srv.ShardStats()
	fmt.Printf("shard fleet: %d enclaves (EPC %d MB each), rows cut at %v\n",
		cfg.shards, cfg.epcMB, sv.Part.Bounds)
	for i := 0; i < st.Shards; i++ {
		fmt.Printf("  shard %d: rows %d, %.2f MB EPC used\n",
			i, sv.Part.Rows(i), float64(st.EPCUsed[i])/(1<<20))
	}

	if cfg.httpAddr != "" {
		runShardedHTTP(cfg, srv, info, ds)
		return
	}
	runShardedStream(cfg, srv, sv, info, ds)
}

// runShardedHTTP serves the shard fleet behind the same HTTP surface as
// the registry fleet, with the per-shard metric families on /metrics.
func runShardedHTTP(cfg shardedServeConfig, srv *serve.ShardedServer, info vaultInfo, ds *datasets.Dataset) {
	api := serve.NewShardedAPI(srv, serve.APIConfig{
		Vaults: []serve.APIVault{{
			ID: info.ID, Dataset: info.Dataset, Design: info.Design,
			Nodes: info.Nodes, Params: info.Params,
		}},
		Features:    func(string) *mat.Matrix { return ds.X },
		NodeQueries: cfg.nq != nil,
		Limit:       cfg.limit,
		Precision:   cfg.precision,
		Trace:       cfg.ring,
		EnablePprof: cfg.pprof,
	})
	extra := ""
	if cfg.ring != nil {
		extra += ", GET /debug/trace"
	}
	if cfg.pprof {
		extra += ", GET /debug/pprof/"
	}
	fmt.Printf("HTTP API on %s: POST /predict, POST /predict_nodes, GET /vaults, GET /stats, GET /metrics%s\n", cfg.httpAddr, extra)
	if err := http.ListenAndServe(cfg.httpAddr, api.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "http server:", err)
		os.Exit(1)
	}
}

// runShardedStream drives the synthetic client mix against the shard
// router and prints serving plus per-shard statistics. With -chaos > 0
// a seeded injector kills shards mid-stream — alternating ECALL-abort
// storms with outright enclave loss — and the report gains a recovery
// section: outage errors become expected (counted, not fatal) and the
// run ends by proving the fleet settled back to bit-identical answers.
func runShardedStream(cfg shardedServeConfig, srv *serve.ShardedServer, sv *core.ShardedVault, info vaultInfo, ds *datasets.Dataset) {
	clients, requests := cfg.clients, cfg.requests
	nodeQueries := cfg.nq != nil
	mix := ""
	if nodeQueries {
		mix = " (50% node queries)"
	}
	fmt.Printf("synthetic stream: %d clients × %d requests across %d shards%s\n",
		clients, requests, srv.Shards(), mix)
	var baseline []int
	if cfg.chaos > 0 {
		fmt.Printf("chaos: %d seeded shard kills over the stream (seed %d)\n", cfg.chaos, cfg.seed)
		var err error
		if baseline, err = srv.Predict(ds.X); err != nil {
			fmt.Fprintln(os.Stderr, "chaos baseline predict:", err)
			os.Exit(1)
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	var outageErrs atomic.Uint64
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				var err error
				if nodeQueries && r%2 == 1 {
					n := info.Nodes
					seeds := [2]int{(c*131 + r*17) % n, (c*257 + r*37 + 1) % n}
					if seeds[0] == seeds[1] {
						seeds[1] = (seeds[1] + 1) % n
					}
					if _, err = srv.PredictNodes(seeds[:]); err != nil {
						err = fmt.Errorf("%s node query: %w", info.ID, err)
					}
				} else if _, err = srv.Predict(ds.X); err != nil {
					err = fmt.Errorf("%s: %w", info.ID, err)
				}
				if err != nil {
					if cfg.chaos > 0 {
						outageErrs.Add(1)
						continue
					}
					errs <- err
					return
				}
			}
		}(c)
	}
	if cfg.chaos > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed))
			for k := 0; k < cfg.chaos; k++ {
				time.Sleep(time.Duration(2+rng.Intn(8)) * time.Millisecond)
				sh := rng.Intn(sv.Shards())
				if k%2 == 0 {
					sv.Shard(sh).Enclave.SetFaultPlan(&enclave.FaultPlan{AbortRate: 1, Seed: int64(k + 1)})
					fmt.Printf("chaos: kill %d — shard %d ECALL-abort storm\n", k, sh)
				} else {
					sv.Shard(sh).Enclave.MarkLost()
					fmt.Printf("chaos: kill %d — shard %d enclave lost\n", k, sh)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fmt.Fprintln(os.Stderr, "serving error:", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	if cfg.chaos > 0 {
		settleStart := time.Now()
		settled := false
		for time.Since(settleStart) < 30*time.Second {
			if labels, err := srv.Predict(ds.X); err == nil {
				if len(labels) != len(baseline) {
					fmt.Fprintln(os.Stderr, "chaos: post-recovery prediction has wrong length")
					os.Exit(1)
				}
				for i := range labels {
					if labels[i] != baseline[i] {
						fmt.Fprintf(os.Stderr, "chaos: post-recovery prediction diverged at node %d\n", i)
						os.Exit(1)
					}
				}
				settled = true
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if !settled {
			fmt.Fprintln(os.Stderr, "chaos: fleet did not settle within 30s")
			os.Exit(1)
		}
	}

	st := srv.Stats()
	sst := srv.ShardStats()
	fmt.Printf("\nserved %d requests in %v\n", st.Completed, wall.Round(time.Millisecond))
	fmt.Printf("  throughput  %.1f req/s (%.1f req/s over uptime)\n",
		float64(st.Completed)/wall.Seconds(), st.Throughput)
	fmt.Printf("  latency     p50 %v, p95 %v, p99 %v, max %v\n",
		st.P50Latency.Round(time.Microsecond), st.P95Latency.Round(time.Microsecond),
		st.P99Latency.Round(time.Microsecond), st.MaxLatency.Round(time.Microsecond))
	printEndpointLatency("predict", st.FullLatency)
	printEndpointLatency("predict_nodes", st.NodeLatency)
	fmt.Printf("  batching    %d wake-ups, %.2f requests per batch\n", st.Batches, st.AvgBatch)
	fmt.Printf("  errors      %d\n", st.Errors)
	if sst.Fanout.Count > 0 {
		fmt.Printf("  fan-out     p50 %v, p99 %v across %d shards\n",
			time.Duration(sst.Fanout.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(sst.Fanout.Quantile(0.99)).Round(time.Microsecond), sst.Shards)
	}
	var halo int64
	for i := 0; i < sst.Shards; i++ {
		halo += sst.HaloBytes[i]
		fmt.Printf("  shard %d     %.2f MB EPC used of %d MB, %.2f MB halo gathered\n",
			i, float64(sst.EPCUsed[i])/(1<<20), sst.EPCLimit[i]>>20,
			float64(sst.HaloBytes[i])/(1<<20))
	}
	fmt.Printf("  enclave     %d ECALLs, %d OCALLs, %.2f MB in, %.2f MB out, %.2f MB halo total\n",
		sst.Ledger.ECalls, sst.Ledger.OCalls, float64(sst.Ledger.BytesIn)/(1<<20),
		float64(sst.Ledger.BytesOut)/(1<<20), float64(halo)/(1<<20))
	fmt.Printf("  spill       %.2f MB streamed through untrusted scratch\n",
		float64(st.SpillBytes)/(1<<20))

	if cfg.chaos > 0 {
		fmt.Printf("\nchaos report: %d kills injected, %d requests failed during outages, "+
			"%d requests past deadline\n", cfg.chaos, outageErrs.Load(), st.DeadlineExceeded)
		breakerName := map[int32]string{0: "closed", 1: "open", 2: "half-open"}
		for i := 0; i < sst.Shards; i++ {
			fmt.Printf("  shard %d     %d restarts, breaker %s\n",
				i, sst.Restarts[i], breakerName[sst.Breaker[i]])
		}
		if cfg.ring != nil {
			for _, sp := range cfg.ring.Last(0) {
				if sp.Kind == obs.SpanRecover {
					fmt.Printf("  recovery    shard %d back in %v\n",
						sp.Rows, time.Duration(sp.Dur).Round(time.Microsecond))
				}
			}
		}
		fmt.Println("  post-recovery predictions bit-identical with pre-chaos baseline")
	}
}
