// Command gnnvault trains, deploys, and queries a GNNVault protected GNN on
// the built-in datasets, and runs the link-stealing security analysis
// against a deployment.
//
// Usage:
//
//	gnnvault train  -dataset cora -design parallel -epochs 200
//	gnnvault attack -dataset cora -pairs 400
//	gnnvault info   -dataset cora
//	gnnvault serve  -dataset cora,citeseer -design parallel,series -workers 4
//	gnnvault serve  -dataset cora -http :8080
//
// `serve` deploys a fleet of vaults — every dataset × design pair — into
// one shared enclave behind the EPC-aware registry (internal/registry) and
// the routed worker pool (internal/serve). It either drives a synthetic
// concurrent query stream (default) or exposes an HTTP/JSON API (-http)
// with /predict, /vaults, and /stats endpoints, reporting throughput,
// latency, micro-batching, and workspace plan/evict churn. See the README
// ops guide for flags, endpoints, and how to read the statistics.
//
// `train` executes the full partition-before-training pipeline, deploys
// into the simulated SGX enclave, runs one inference, and reports the
// paper's headline quantities (p_org, p_bb, p_rec, θ, timing breakdown,
// enclave memory). `attack` mounts the six-metric link-stealing attack on
// the unprotected model, the vault's public surface, and the DNN baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gnnvault/internal/attack"
	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/graph"
	"gnnvault/internal/substitute"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "train":
		cmdTrain(args)
	case "attack":
		cmdAttack(args)
	case "info":
		cmdInfo(args)
	case "package":
		cmdPackage(args)
	case "infer":
		cmdInfer(args)
	case "stats":
		cmdStats(args)
	case "serve":
		cmdServe(args)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gnnvault <train|attack|info|package|infer|stats|serve> [flags]
  train   -dataset cora -design parallel|series|cascaded -sub knn|cosine|random|dnn -epochs N
  attack  -dataset cora -pairs N -epochs N
  info    -dataset cora
  package -dataset cora -design parallel -out vault.gnv
  infer   -bundle vault.gnv
  stats   -dataset cora
  serve   -dataset a,b -design x,y -workers N -clients N -requests N -batch N
          -epc-mb N -epc-budget-mb N -ws-per-vault N [-http :8080]`)
}

func loadDataset(name string) *datasets.Dataset {
	for _, n := range datasets.Names {
		if n == name {
			return datasets.Load(name)
		}
	}
	fmt.Fprintf(os.Stderr, "unknown dataset %q; available: %v\n", name, datasets.Names)
	os.Exit(2)
	return nil
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	dataset := fs.String("dataset", "cora", "built-in dataset name")
	design := fs.String("design", "parallel", "rectifier design: parallel|series|cascaded")
	sub := fs.String("sub", "knn", "substitute graph: knn|cosine|random|dnn")
	k := fs.Int("k", 2, "k for the KNN substitute graph")
	epochs := fs.Int("epochs", 200, "training epochs")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args) //nolint:errcheck

	ds := loadDataset(*dataset)
	cfg := core.PipelineConfig{
		Spec:    core.SpecForDataset(*dataset),
		Design:  core.RectifierDesign(*design),
		SubKind: substitute.Kind(*sub),
		KNNK:    *k,
		Train:   core.TrainConfig{Epochs: *epochs, LR: 0.01, WeightDecay: 5e-4, Seed: *seed},
	}

	fmt.Printf("GNNVault pipeline on %s (model %s, %s rectifier, %s substitute)\n",
		*dataset, cfg.Spec.Name, cfg.Design, cfg.SubKind)
	start := time.Now()
	res := core.RunPipeline(ds, cfg)
	fmt.Printf("trained in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("p_org  = %5.1f%%   (original GNN, real adjacency — the model worth stealing)\n", res.POrg*100)
	fmt.Printf("p_bb   = %5.1f%%   (public backbone — all an attacker can run)\n", res.PBB*100)
	fmt.Printf("p_rec  = %5.1f%%   (rectified, inside the enclave)\n", res.PRec*100)
	fmt.Printf("Δp     = %5.1f%%   accuracy degradation = %.1f%%\n\n",
		res.DeltaP()*100, res.AccuracyDegradation()*100)
	fmt.Printf("θ_bb   = %.4fM parameters (untrusted)\n", float64(res.Backbone.NumParams())/1e6)
	fmt.Printf("θ_rec  = %.4fM parameters (enclave)\n\n", float64(res.Rectifier.NumParams())/1e6)

	vault, err := core.Deploy(res.Backbone, res.Rectifier, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		fmt.Fprintln(os.Stderr, "deploy failed:", err)
		os.Exit(1)
	}
	labels, bd, err := vault.Predict(ds.X)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inference failed:", err)
		os.Exit(1)
	}
	correct := 0
	for _, i := range ds.TestMask {
		if labels[i] == ds.Labels[i] {
			correct++
		}
	}
	fmt.Printf("deployed inference: %d nodes, test acc %.1f%% (label-only output)\n",
		len(labels), 100*float64(correct)/float64(len(ds.TestMask)))
	fmt.Printf("  backbone %-12v transfer %-12v enclave %-12v total %v\n",
		bd.BackboneTime, bd.TransferTime, bd.EnclaveTime, bd.Total())
	fmt.Printf("  peak EPC %.2f MB of %d MB; %d ECALLs, %.2f MB transferred\n",
		float64(bd.PeakEPCBytes)/(1<<20), vault.Enclave.EPCLimit()>>20,
		bd.ECalls, float64(bd.BytesIn)/(1<<20))
	m := vault.Enclave.Measurement()
	fmt.Printf("  enclave measurement %x…\n", m[:8])
}

func cmdAttack(args []string) {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	dataset := fs.String("dataset", "cora", "built-in dataset name")
	pairs := fs.Int("pairs", 400, "positive pairs sampled")
	epochs := fs.Int("epochs", 200, "training epochs")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args) //nolint:errcheck

	ds := loadDataset(*dataset)
	spec := core.SpecForDataset(*dataset)
	train := core.TrainConfig{Epochs: *epochs, LR: 0.01, WeightDecay: 5e-4, Seed: *seed}

	fmt.Printf("link-stealing attack on %s (%d+%d pairs)\n", *dataset, *pairs, *pairs)
	orig := core.TrainOriginal(ds, spec, train)
	bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), train)
	dnn := core.TrainBackbone(ds, spec, substitute.KindDNN, nil, train)

	sample := attack.SamplePairs(ds.Graph, *pairs, *seed+42)
	aucOrg := attack.Run(orig.Embeddings(ds.X), sample)
	aucGV := attack.Run(bb.Embeddings(ds.X), sample)
	aucBase := attack.Run(dnn.Embeddings(ds.X), sample)

	fmt.Printf("\n%-12s  %-6s  %-6s  %-6s\n", "metric", "M_org", "M_gv", "M_base")
	for _, m := range attack.Metrics {
		fmt.Printf("%-12s  %.3f   %.3f   %.3f\n", m, aucOrg[m], aucGV[m], aucBase[m])
	}
	fmt.Println("\nM_org: embeddings of the unprotected GNN (what deploying without a TEE leaks)")
	fmt.Println("M_gv : GNNVault's attacker-observable surface (backbone embeddings only)")
	fmt.Println("M_base: feature-only DNN baseline — M_gv ≈ M_base means no edge leakage")
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	dataset := fs.String("dataset", "cora", "built-in dataset name")
	fs.Parse(args) //nolint:errcheck

	ds := loadDataset(*dataset)
	spec := core.SpecForDataset(*dataset)
	fmt.Printf("dataset %s (synthetic stand-in, model %s)\n", ds.Name, spec.Name)
	fmt.Printf("  nodes %d, directed edges %d, features %d, classes %d\n",
		ds.Graph.N(), ds.Graph.NumDirectedEdges(), ds.X.Cols, ds.NumClasses)
	fmt.Printf("  train/test %d/%d, homophily %.2f, density %.4f\n",
		len(ds.TrainMask), len(ds.TestMask), ds.Graph.Homophily(ds.Labels), ds.Graph.Density())
	fmt.Printf("  dense adjacency %.2f MB vs COO %.4f MB\n",
		float64(ds.Graph.DenseAdjacencyBytes())/(1<<20), float64(ds.Graph.COOBytes())/(1<<20))
	fmt.Printf("  paper original: %d nodes, %d edges, %d features, dense A %.2f MB\n",
		ds.Paper.Nodes, ds.Paper.Edges, ds.Paper.Features, ds.Paper.DenseAMB)
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dataset := fs.String("dataset", "cora", "built-in dataset name")
	fs.Parse(args) //nolint:errcheck

	ds := loadDataset(*dataset)
	g := ds.Graph
	comps, _ := graph.ConnectedComponents(g)
	fmt.Printf("graph statistics for %s (private adjacency)\n", ds.Name)
	fmt.Printf("  nodes %d, undirected edges %d, density %.5f\n",
		g.N(), g.NumUndirectedEdges(), g.Density())
	fmt.Printf("  avg degree %.2f, connected components %d\n", g.AvgDegree(), comps)
	fmt.Printf("  clustering coefficient %.4f, effective diameter %d\n",
		graph.ClusteringCoefficient(g), graph.EffectiveDiameter(g, 32))
	fmt.Printf("  label homophily %.3f\n", g.Homophily(ds.Labels))
	hist := graph.DegreeHistogram(g)
	mode, modeCount := 0, 0
	for d, c := range hist {
		if c > modeCount {
			mode, modeCount = d, c
		}
	}
	fmt.Printf("  degree mode %d (%d nodes), max degree %d\n", mode, modeCount, len(hist)-1)
}
