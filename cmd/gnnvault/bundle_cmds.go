package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gnnvault/internal/bundle"
	"gnnvault/internal/core"
	"gnnvault/internal/enclave"
	"gnnvault/internal/substitute"
)

// cmdPackage trains a full GNNVault pipeline and writes the deployment
// bundle a vendor would ship to devices.
func cmdPackage(args []string) {
	fs := flag.NewFlagSet("package", flag.ExitOnError)
	dataset := fs.String("dataset", "cora", "built-in dataset name")
	design := fs.String("design", "parallel", "rectifier design")
	epochs := fs.Int("epochs", 200, "training epochs")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "vault.gnv", "output bundle path")
	fs.Parse(args) //nolint:errcheck

	ds := loadDataset(*dataset)
	cfg := core.PipelineConfig{
		Spec:         core.SpecForDataset(*dataset),
		Design:       core.RectifierDesign(*design),
		SubKind:      substitute.KindKNN,
		KNNK:         2,
		Train:        core.TrainConfig{Epochs: *epochs, LR: 0.01, WeightDecay: 5e-4, Seed: *seed},
		SkipOriginal: true,
	}
	fmt.Printf("training %s / %s rectifier…\n", *dataset, cfg.Design)
	res := core.RunPipeline(ds, cfg)
	vault, err := core.Deploy(res.Backbone, res.Rectifier, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		fmt.Fprintln(os.Stderr, "deploy:", err)
		os.Exit(1)
	}
	data, err := vault.Export(*dataset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "export:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	m := vault.Enclave.Measurement()
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(data))
	fmt.Printf("  p_bb %.1f%% (public), p_rec %.1f%% (sealed)\n", res.PBB*100, res.PRec*100)
	fmt.Printf("  enclave measurement %x…\n", m[:8])
	fmt.Println("  private sections are AES-GCM ciphertext bound to that measurement")
}

// cmdInfer imports a bundle on the "device" and runs one inference.
func cmdInfer(args []string) {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	in := fs.String("bundle", "vault.gnv", "bundle path")
	dataset := fs.String("dataset", "", "dataset to evaluate on (default: the bundle's)")
	fs.Parse(args) //nolint:errcheck

	data, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "read:", err)
		os.Exit(1)
	}
	vault, err := core.Import(data, enclave.DefaultCostModel())
	if err != nil {
		fmt.Fprintln(os.Stderr, "import:", err)
		os.Exit(1)
	}
	name := *dataset
	if name == "" {
		name = vaultDatasetName(data)
	}
	ds := loadDataset(name)
	start := time.Now()
	labels, bd, err := vault.Predict(ds.X)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
	correct := 0
	for _, i := range ds.TestMask {
		if labels[i] == ds.Labels[i] {
			correct++
		}
	}
	fmt.Printf("imported %s: %s rectifier, θ_rec %.4fM\n",
		*in, vault.Design(), float64(vault.RectifierParams())/1e6)
	fmt.Printf("inference on %s: test acc %.1f%% in %v (wall %v)\n",
		name, 100*float64(correct)/float64(len(ds.TestMask)), bd.Total(),
		time.Since(start).Round(time.Millisecond))
}

func vaultDatasetName(data []byte) string {
	b, err := bundle.Unmarshal(data)
	if err != nil || b.Manifest.Dataset == "" {
		return "cora"
	}
	return b.Manifest.Dataset
}
