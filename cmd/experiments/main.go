// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all                 # every table and figure
//	experiments -run table2 -epochs 100  # one experiment, custom budget
//	experiments -run fig4 -tsne-dir out  # also dump t-SNE CSVs
//
// Runs are deterministic in -seed. With the default 200 epochs the full
// suite takes several minutes of pure-Go training; -epochs 60 gives the
// same qualitative shapes in a fraction of the time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gnnvault/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run: table1|table2|table3|table4|fig4|fig5|fig6|ext-arch|ext-labelonly|ext-extract|ext-stream|ext-subgraph|ext-core|ext-serve|ext-exec|ext-precision|ext-attack|ext-obs|ext-shard|all")
	epochs := flag.Int("epochs", 200, "training epochs per model")
	seed := flag.Int64("seed", 1, "random seed")
	datasetsFlag := flag.String("datasets", "", "comma-separated dataset subset (default: all)")
	tsneDir := flag.String("tsne-dir", "", "directory to write fig4 t-SNE CSVs into")
	sizesFlag := flag.String("sizes", "", "comma-separated power-law graph sizes for ext-subgraph and ext-shard (default 20000,50000; ext-shard uses the largest, floor 50000 — shard scale-out is degenerate on tiny graphs)")
	benchOut := flag.String("bench-out", "", "write ext-subgraph results as JSON to this path (e.g. BENCH_subgraph.json)")
	attackCheck := flag.String("attack-check", "", "validate ext-attack rows against this thresholds JSON (e.g. ci/attack_thresholds.json); exits non-zero on a privacy regression")
	obsCheck := flag.Bool("obs-check", false, "fail when any ext-obs telemetry overhead row exceeds the committed ceiling; exits non-zero on an observability tax")
	flag.Parse()

	bench := benchDoc{}
	var attackRows []experiments.ExtAttackRow
	var obsRows []experiments.ExtObsRow
	opts := experiments.Options{Epochs: *epochs, Seed: *seed}
	if *datasetsFlag != "" {
		opts.Datasets = strings.Split(*datasetsFlag, ",")
	}
	if *sizesFlag != "" {
		for _, s := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bad -sizes entry %q\n", s)
				os.Exit(2)
			}
			opts.SubgraphSizes = append(opts.SubgraphSizes, n)
		}
	}

	jobs := map[string]func() string{
		"table1": func() string { _, t := experiments.Table1(opts); return t },
		"table2": func() string { _, t := experiments.Table2(opts); return t },
		"table3": func() string { _, t := experiments.Table3(opts); return t },
		"table4": func() string { _, t := experiments.Table4(opts); return t },
		"fig4": func() string {
			res, t := experiments.Fig4(opts)
			if *tsneDir != "" {
				if err := dumpTSNE(*tsneDir, res); err != nil {
					fmt.Fprintln(os.Stderr, "warning:", err)
				} else {
					t += fmt.Sprintf("\nt-SNE CSVs written to %s\n", *tsneDir)
				}
			}
			return t
		},
		"fig5": func() string { _, t := experiments.Fig5(opts); return t },
		"fig6": func() string { _, t := experiments.Fig6(opts); return t },
		// Extensions beyond the paper's evaluation.
		"ext-arch":      func() string { _, t := experiments.ExtArchitectures(opts); return t },
		"ext-labelonly": func() string { _, t := experiments.ExtLabelOnly(opts); return t },
		"ext-extract":   func() string { _, t := experiments.ExtExtraction(opts); return t },
		"ext-stream":    func() string { _, t := experiments.ExtStreaming(opts); return t },
		"ext-subgraph": func() string {
			rows, t := experiments.ExtSubgraph(opts)
			bench.add("subgraph_node_query", rows)
			return t
		},
		"ext-core": func() string {
			rows, t := experiments.ExtCore(opts)
			bench.add("core_predict_into", rows)
			return t
		},
		"ext-serve": func() string {
			rows, t := experiments.ExtServe(opts)
			bench.add("registry_serving", rows)
			return t
		},
		"ext-exec": func() string {
			rows, t := experiments.ExtExec(opts)
			bench.add("exec_engine", rows)
			return t
		},
		"ext-precision": func() string {
			rows, t := experiments.ExtPrecision(opts)
			bench.add("precision_plans", rows)
			return t
		},
		"ext-attack": func() string {
			rows, t := experiments.ExtAttack(opts)
			bench.add("attack_surface", rows)
			attackRows = rows
			return t
		},
		"ext-obs": func() string {
			rows, t := experiments.ExtObs(opts)
			bench.add("telemetry_overhead", rows)
			obsRows = rows
			return t
		},
		"ext-shard": func() string {
			rows, t := experiments.ExtShard(opts)
			bench.add("shard_fleet", rows)
			return t
		},
	}
	order := []string{"table1", "table2", "table3", "fig4", "fig5", "fig6", "table4", "ext-arch", "ext-labelonly", "ext-extract", "ext-stream", "ext-subgraph", "ext-core", "ext-serve", "ext-exec", "ext-precision", "ext-attack", "ext-obs", "ext-shard"}

	selected := strings.Split(*run, ",")
	if *run == "all" {
		selected = order
	}
	for _, name := range selected {
		job, ok := jobs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s, all)\n", name, strings.Join(order, ", "))
			os.Exit(2)
		}
		start := time.Now()
		text := job()
		fmt.Println(text)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if *benchOut != "" {
		if err := bench.write(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "warning:", err)
		}
	}
	if *attackCheck != "" {
		if err := checkAttack(attackRows, *attackCheck); err != nil {
			fmt.Fprintln(os.Stderr, "privacy regression:", err)
			os.Exit(1)
		}
		fmt.Printf("attack thresholds OK (%s)\n", *attackCheck)
	}
	if *obsCheck {
		if err := checkObs(obsRows); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry overhead regression:", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry overhead OK (≤ %.0f%%)\n", obsOverheadLimitPct)
	}
}

// obsOverheadLimitPct is the committed ceiling on flight-recorder overhead:
// a live span ring may cost at most this much relative to the no-op
// recorder on either hot serving path.
const obsOverheadLimitPct = 5.0

// obsOverheadSlackUS forgives percentage blips whose absolute per-query
// delta is below timer resolution on these µs-scale rounds — a 3µs wiggle
// on a 50µs round is noise, not instrumentation cost.
const obsOverheadSlackUS = 50.0

// checkObs enforces the overhead ceiling over an ext-obs run.
func checkObs(rows []experiments.ExtObsRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("-obs-check given but no ext-obs rows were produced (add ext-obs to -run)")
	}
	for _, r := range rows {
		if r.OverheadPct <= obsOverheadLimitPct {
			continue
		}
		if r.InstrumentedUS-r.NopUS < obsOverheadSlackUS {
			continue
		}
		return fmt.Errorf("%s: instrumented %.0fµs vs no-op %.0fµs = %+.2f%% overhead, limit %.0f%%",
			r.Bench, r.InstrumentedUS, r.NopUS, r.OverheadPct, obsOverheadLimitPct)
	}
	return nil
}

// attackThresholds are the committed privacy-regression ceilings
// (ci/attack_thresholds.json): CI fails when any defended serving
// configuration leaks more than a past run plus margin, or when the
// undefended baseline stops leaking — the harness itself regressing.
type attackThresholds struct {
	// MaxDefendedLinkAUC bounds the best link-stealing AUC (either serving
	// path) of every row whose defense is not "undefended".
	MaxDefendedLinkAUC float64 `json:"max_defended_link_auc"`
	// MaxDefendedFidelity bounds extraction fidelity on defended rows.
	MaxDefendedFidelity float64 `json:"max_defended_fidelity"`
	// MinUndefendedLinkAUC keeps the baseline attack honest: if the
	// undefended rows fall to coin-flip the sweep is measuring nothing.
	MinUndefendedLinkAUC float64 `json:"min_undefended_link_auc"`
}

// checkAttack enforces the committed ceilings over an ext-attack run.
func checkAttack(rows []experiments.ExtAttackRow, path string) error {
	if len(rows) == 0 {
		return fmt.Errorf("-attack-check given but no ext-attack rows were produced (add ext-attack to -run)")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var th attackThresholds
	if err := json.Unmarshal(raw, &th); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	for _, r := range rows {
		auc := r.BestLinkAUCFull
		if r.BestLinkAUCSub > auc {
			auc = r.BestLinkAUCSub
		}
		id := fmt.Sprintf("%s/%s/%s/%s", r.Dataset, r.Design, r.Precision, r.Defense)
		if r.Defense == "undefended" {
			if r.BestLinkAUCFull < th.MinUndefendedLinkAUC {
				return fmt.Errorf("%s: link AUC %.3f below baseline floor %.3f — the attack harness lost its teeth",
					id, r.BestLinkAUCFull, th.MinUndefendedLinkAUC)
			}
			continue
		}
		if auc > th.MaxDefendedLinkAUC {
			return fmt.Errorf("%s: link AUC %.3f above defended ceiling %.3f", id, auc, th.MaxDefendedLinkAUC)
		}
		if r.Fidelity > th.MaxDefendedFidelity {
			return fmt.Errorf("%s: extraction fidelity %.3f above defended ceiling %.3f", id, r.Fidelity, th.MaxDefendedFidelity)
		}
	}
	return nil
}

// benchDoc accumulates the JSON-emitting experiments' rows, one key per
// experiment, so selecting several of them with one -bench-out writes a
// single merged document instead of each overwriting the last.
type benchDoc map[string]any

// add records one experiment's rows under its key.
func (d benchDoc) add(key string, rows any) { d[key] = rows }

// write serialises the accumulated document to path (the perf-tracking
// artifacts: BENCH_subgraph.json, BENCH_core.json, BENCH_serve.json). A
// run whose selected experiments emitted nothing writes nothing.
func (d benchDoc) write(path string) error {
	if len(d) == 0 {
		fmt.Fprintf(os.Stderr, "warning: -bench-out %s: no selected experiment emits benchmark rows\n", path)
		return nil
	}
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding bench JSON: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchmark JSON written to %s\n", path)
	return nil
}

func dumpTSNE(dir string, res *experiments.Fig4Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, csv := range map[string]string{
		"original.csv":  res.OriginalTSNE,
		"backbone.csv":  res.BackboneTSNE,
		"rectifier.csv": res.RectifierTSNE,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(csv), 0o644); err != nil {
			return err
		}
	}
	return nil
}
