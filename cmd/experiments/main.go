// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all                 # every table and figure
//	experiments -run table2 -epochs 100  # one experiment, custom budget
//	experiments -run fig4 -tsne-dir out  # also dump t-SNE CSVs
//
// Runs are deterministic in -seed. With the default 200 epochs the full
// suite takes several minutes of pure-Go training; -epochs 60 gives the
// same qualitative shapes in a fraction of the time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gnnvault/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run: table1|table2|table3|table4|fig4|fig5|fig6|ext-arch|ext-labelonly|ext-extract|ext-stream|ext-subgraph|all")
	epochs := flag.Int("epochs", 200, "training epochs per model")
	seed := flag.Int64("seed", 1, "random seed")
	datasetsFlag := flag.String("datasets", "", "comma-separated dataset subset (default: all)")
	tsneDir := flag.String("tsne-dir", "", "directory to write fig4 t-SNE CSVs into")
	sizesFlag := flag.String("sizes", "", "comma-separated power-law graph sizes for ext-subgraph (default 20000,50000)")
	benchOut := flag.String("bench-out", "", "write ext-subgraph results as JSON to this path (e.g. BENCH_subgraph.json)")
	flag.Parse()

	opts := experiments.Options{Epochs: *epochs, Seed: *seed}
	if *datasetsFlag != "" {
		opts.Datasets = strings.Split(*datasetsFlag, ",")
	}
	if *sizesFlag != "" {
		for _, s := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "bad -sizes entry %q\n", s)
				os.Exit(2)
			}
			opts.SubgraphSizes = append(opts.SubgraphSizes, n)
		}
	}

	jobs := map[string]func() string{
		"table1": func() string { _, t := experiments.Table1(opts); return t },
		"table2": func() string { _, t := experiments.Table2(opts); return t },
		"table3": func() string { _, t := experiments.Table3(opts); return t },
		"table4": func() string { _, t := experiments.Table4(opts); return t },
		"fig4": func() string {
			res, t := experiments.Fig4(opts)
			if *tsneDir != "" {
				if err := dumpTSNE(*tsneDir, res); err != nil {
					fmt.Fprintln(os.Stderr, "warning:", err)
				} else {
					t += fmt.Sprintf("\nt-SNE CSVs written to %s\n", *tsneDir)
				}
			}
			return t
		},
		"fig5": func() string { _, t := experiments.Fig5(opts); return t },
		"fig6": func() string { _, t := experiments.Fig6(opts); return t },
		// Extensions beyond the paper's evaluation.
		"ext-arch":      func() string { _, t := experiments.ExtArchitectures(opts); return t },
		"ext-labelonly": func() string { _, t := experiments.ExtLabelOnly(opts); return t },
		"ext-extract":   func() string { _, t := experiments.ExtExtraction(opts); return t },
		"ext-stream":    func() string { _, t := experiments.ExtStreaming(opts); return t },
		"ext-subgraph": func() string {
			rows, t := experiments.ExtSubgraph(opts)
			if *benchOut != "" {
				if err := writeBenchJSON(*benchOut, rows); err != nil {
					fmt.Fprintln(os.Stderr, "warning:", err)
				} else {
					t += fmt.Sprintf("\nbenchmark JSON written to %s\n", *benchOut)
				}
			}
			return t
		},
	}
	order := []string{"table1", "table2", "table3", "fig4", "fig5", "fig6", "table4", "ext-arch", "ext-labelonly", "ext-extract", "ext-stream", "ext-subgraph"}

	selected := strings.Split(*run, ",")
	if *run == "all" {
		selected = order
	}
	for _, name := range selected {
		job, ok := jobs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s, all)\n", name, strings.Join(order, ", "))
			os.Exit(2)
		}
		start := time.Now()
		text := job()
		fmt.Println(text)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// writeBenchJSON serialises the ext-subgraph sweep for the perf-tracking
// artifact (BENCH_subgraph.json).
func writeBenchJSON(path string, rows []experiments.ExtSubgraphRow) error {
	data, err := json.MarshalIndent(map[string]any{"subgraph_node_query": rows}, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding bench JSON: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func dumpTSNE(dir string, res *experiments.Fig4Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, csv := range map[string]string{
		"original.csv":  res.OriginalTSNE,
		"backbone.csv":  res.BackboneTSNE,
		"rectifier.csv": res.RectifierTSNE,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(csv), 0o644); err != nil {
			return err
		}
	}
	return nil
}
