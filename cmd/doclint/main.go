// Command doclint enforces the repo's documentation bar in CI:
//
//	doclint [-md dir] [pkgdir ...]
//
// For every package directory given, it fails if the package has no
// package comment, or if any exported top-level identifier — function,
// type, var, const, or method on an exported receiver — lacks a doc
// comment (a group doc on a var/const/type block counts for its members).
// Test files are skipped; runnable Example functions are vetted by `go
// vet` in the same CI job.
//
// With -md it additionally walks *.md files under the given directory and
// fails on relative links to files that do not exist, catching doc drift
// like renamed files still referenced from README.md or DESIGN.md.
//
// With -metrics-src it additionally extracts every gnnvault_* metric-name
// string literal from the given Go source file and fails unless each name
// appears verbatim in -metrics-doc, so the /metrics scrape surface and the
// README's metrics reference cannot drift apart.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	mdRoot := flag.String("md", "", "also check relative links in *.md files under this directory")
	metricsSrc := flag.String("metrics-src", "", "Go file whose gnnvault_* metric-name string literals must all be documented")
	metricsDoc := flag.String("metrics-doc", "README.md", "markdown file that must mention every metric name found in -metrics-src")
	flag.Parse()

	problems := 0
	for _, dir := range flag.Args() {
		problems += lintPackage(dir)
	}
	if *mdRoot != "" {
		problems += lintMarkdown(*mdRoot)
	}
	if *metricsSrc != "" {
		problems += lintMetrics(*metricsSrc, *metricsDoc)
	}
	if problems > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", problems)
		os.Exit(1)
	}
}

// lintPackage reports every exported identifier in dir's non-test files
// that lacks a doc comment, returning the problem count.
func lintPackage(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	problems := 0
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Fprintf(os.Stderr, "%s: package %s has no package comment\n", dir, pkg.Name)
			problems++
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				problems += lintDecl(fset, decl)
			}
		}
	}
	return problems
}

// lintDecl checks one top-level declaration, returning the problem count.
func lintDecl(fset *token.FileSet, decl ast.Decl) int {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return 0
		}
		if d.Recv != nil && !exportedReceiver(d.Recv) {
			return 0 // method on an unexported type: internal API
		}
		complain(fset, d.Pos(), "func", d.Name.Name)
		return 1
	case *ast.GenDecl:
		if d.Doc != nil {
			return 0 // a group doc covers every member of the block
		}
		problems := 0
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil {
					complain(fset, s.Pos(), "type", s.Name.Name)
					problems++
				}
			case *ast.ValueSpec:
				if s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						complain(fset, s.Pos(), "value", name.Name)
						problems++
					}
				}
			}
		}
		return problems
	}
	return 0
}

// exportedReceiver reports whether a method's receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// complain prints one missing-doc finding with its position.
func complain(fset *token.FileSet, pos token.Pos, kind, name string) {
	fmt.Fprintf(os.Stderr, "%s: exported %s %s is missing a doc comment\n",
		fset.Position(pos), kind, name)
}

// metricName matches exposition metric-name literals: the gnnvault_*
// family written by internal/serve/metrics.go.
var metricName = regexp.MustCompile(`^gnnvault_[a-z0-9_]+$`)

// lintMetrics extracts every gnnvault_* string literal from the Go source
// file src and reports each one missing from the markdown file doc,
// returning the problem count. Finding no metric literals at all is itself
// a problem — it means the lint is pointed at the wrong file.
func lintMetrics(src, doc string) int {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, src, nil, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", src, err)
		return 1
	}
	names := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if s, err := strconv.Unquote(lit.Value); err == nil && metricName.MatchString(s) {
			names[s] = true
		}
		return true
	})
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "doclint: %s: no gnnvault_* metric-name literals found\n", src)
		return 1
	}
	data, err := os.ReadFile(doc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", doc, err)
		return 1
	}
	text := string(data)
	var missing []string
	for name := range names {
		if !strings.Contains(text, name) {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "%s: metric %s is not documented in %s\n", src, name, doc)
	}
	return len(missing)
}

// mdLink matches markdown links and images; group 1 is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// lintMarkdown checks every *.md under root for relative links to
// missing files, returning the problem count.
func lintMarkdown(root string) int {
	problems := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue // external or intra-document
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "%s: broken link %q (%s does not exist)\n",
					path, m[1], resolved)
				problems++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: walking %s: %v\n", root, err)
		problems++
	}
	return problems
}
