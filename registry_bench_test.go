package gnnvault_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"gnnvault/internal/core"
	"gnnvault/internal/enclave"
	"gnnvault/internal/registry"
	"gnnvault/internal/serve"
)

// Shared trained state for the registry benchmarks: one backbone+rectifier
// pair, deployed many times to form fleets of varying size.
var (
	regBenchOnce    sync.Once
	regBenchRec     *core.Rectifier
	regBenchPersist int64 // persistent EPC per deployed vault
	regBenchWS      int64 // EPC per planned inference workspace
)

func setupRegistryBench(tb testing.TB) {
	setupBench(tb)
	regBenchOnce.Do(func() {
		train := core.TrainConfig{Epochs: 20, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
		regBenchRec = core.TrainRectifier(benchDS, benchBB, core.Parallel, train)
		v, err := core.Deploy(benchBB, regBenchRec, benchDS.Graph, enclave.DefaultCostModel())
		if err != nil {
			panic(err)
		}
		regBenchPersist = v.PersistentBytes()
		ws, err := v.Plan(v.Nodes())
		if err != nil {
			panic(err)
		}
		regBenchWS = ws.EnclaveBytes()
		ws.Release()
	})
}

// registryFleet deploys n vaults into one enclave whose EPC holds every
// vault's persistent state but only `admit` planned workspaces.
func registryFleet(tb testing.TB, n, admit int) (*enclave.Enclave, *registry.Registry, []string) {
	setupRegistryBench(tb)
	cost := enclave.DefaultCostModel()
	cost.EPCBytes = int64(n)*regBenchPersist + int64(admit)*regBenchWS + regBenchWS/2
	encl := enclave.New(cost, regBenchRec.Identity())
	reg := registry.New(encl, registry.Config{WorkspacesPerVault: 1})
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("cora/%02d", i)
		v, err := core.DeployInto(encl, benchBB, regBenchRec, benchDS.Graph)
		if err != nil {
			tb.Fatalf("deploy %s: %v", ids[i], err)
		}
		if err := reg.Register(ids[i], v); err != nil {
			tb.Fatalf("register %s: %v", ids[i], err)
		}
	}
	return encl, reg, ids
}

// BenchmarkRegistryServe sweeps the fleet size across the EPC cliff. The
// enclave admits two inference workspaces, so fleets of one or two vaults
// serve entirely from cached workspaces (plans/op ≈ 0), while four- and
// eight-vault fleets oversubscribe the EPC and pay plan + eviction churn
// on cold vaults — the memory/latency trade the registry's stats price.
// The hot sub-benchmark pins the fast path itself: acquire → PredictInto →
// release on a resident vault is allocation-free.
func BenchmarkRegistryServe(b *testing.B) {
	b.Run("hot", func(b *testing.B) {
		_, reg, ids := registryFleet(b, 1, 2)
		defer reg.Close()
		v, ws, err := reg.Acquire(ids[0])
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := v.PredictInto(benchDS.X, ws); err != nil { // warm-up
			b.Fatal(err)
		}
		reg.Release(ids[0], ws)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, ws, err := reg.Acquire(ids[0])
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := v.PredictInto(benchDS.X, ws); err != nil {
				b.Fatal(err)
			}
			reg.Release(ids[0], ws)
		}
	})

	const admit = 2
	for _, vaults := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("vaults=%d", vaults), func(b *testing.B) {
			encl, reg, ids := registryFleet(b, vaults, admit)
			defer reg.Close()
			srv := serve.NewMulti(reg, serve.Config{Workers: 2})
			defer srv.Close()
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					id := ids[next.Add(1)%uint64(len(ids))]
					if _, err := srv.Predict(id, benchDS.X); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			st := reg.Stats()
			b.ReportMetric(float64(st.Plans)/float64(b.N), "plans/op")
			b.ReportMetric(float64(st.Evictions)/float64(b.N), "evictions/op")
			if used, limit := encl.EPCUsed(), encl.EPCLimit(); used > limit {
				b.Fatalf("EPC %d exceeded capacity %d", used, limit)
			}
		})
	}
}
