// Recommender reproduces the paper's Fig. 1 motivating scenario: Alice (a
// model vendor) builds a product graph whose edges encode learned
// product-product affinities — expensive IP distilled from user behaviour —
// and deploys a GNN recommender on customer devices. Bob, a curious
// customer with root on his own device, tries to steal the edges.
//
// The example deploys the same model twice: unprotected, and inside
// GNNVault. It then mounts Bob's link-stealing attack on both and prints
// the AUC drop.
package main

import (
	"fmt"
	"log"

	"gnnvault/internal/attack"
	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/substitute"
)

func main() {
	// Alice's product catalogue: the "computer" dataset stands in for an
	// Amazon co-purchase graph — node features are public product
	// attributes, edges are the learned affinities Alice wants to protect,
	// and labels are product categories the RS predicts.
	ds := datasets.Load("computer")
	fmt.Printf("Alice's catalogue: %d products, %d private affinity edges\n",
		ds.Graph.N(), ds.Graph.NumUndirectedEdges())

	train := core.TrainConfig{Epochs: 120, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
	spec := core.SpecForDataset(ds.Name)

	// --- Deployment A: unprotected, the status quo the paper attacks. ---
	orig := core.TrainOriginal(ds, spec, train)
	fmt.Printf("\n[unprotected] accuracy %.1f%%, all %d parameters and the full\n"+
		"adjacency sit in Bob-readable memory\n",
		orig.TestAccuracy(ds.X, ds.Labels, ds.TestMask)*100, orig.NumParams())

	// Bob's attack surface: every intermediate embedding.
	sample := attack.SamplePairs(ds.Graph, 400, 99)
	aucOrg := attack.Run(orig.Embeddings(ds.X), sample)

	// --- Deployment B: GNNVault. ---
	cfg := core.PipelineConfig{
		Spec: spec, Design: core.Parallel,
		SubKind: substitute.KindKNN, KNNK: 2,
		Train: train, SkipOriginal: true,
	}
	res := core.RunPipeline(ds, cfg)
	vault, err := core.Deploy(res.Backbone, res.Rectifier, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	labels, _, err := vault.Predict(ds.X)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for _, i := range ds.TestMask {
		if labels[i] == ds.Labels[i] {
			correct++
		}
	}
	fmt.Printf("\n[GNNVault] deployed accuracy %.1f%% — Bob can only observe the\n"+
		"backbone (%.1f%% accurate) and its embeddings; the vault answers labels only\n",
		100*float64(correct)/float64(len(ds.TestMask)), res.PBB*100)

	aucGV := attack.Run(res.Backbone.Embeddings(ds.X), sample)

	fmt.Printf("\nBob's link-stealing AUC (1.0 = all edges stolen, 0.5 = nothing):\n")
	fmt.Printf("%-12s  %-12s  %-10s\n", "metric", "unprotected", "GNNVault")
	for _, m := range attack.Metrics {
		fmt.Printf("%-12s  %.3f         %.3f\n", m, aucOrg[m], aucGV[m])
	}

	// What Bob can steal from the device at rest: sealed ciphertext.
	params, coo := vault.SealedArtifacts()
	fmt.Printf("\nat rest on Bob's filesystem: %d + %d bytes of AES-GCM ciphertext\n",
		len(params), len(coo))
	m := vault.Enclave.Measurement()
	fmt.Printf("enclave measurement (what Alice attests before provisioning): %x…\n", m[:8])
}
