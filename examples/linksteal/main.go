// Linksteal walks through the paper's security analysis (Table IV) on one
// dataset: it trains the unprotected GNN, the GNNVault backbone, and the
// feature-only DNN baseline, then mounts the six-metric link-stealing
// attack on each observation surface and explains the result.
package main

import (
	"flag"
	"fmt"

	"gnnvault/internal/attack"
	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/substitute"
)

func main() {
	dataset := flag.String("dataset", "citeseer", "built-in dataset")
	epochs := flag.Int("epochs", 120, "training epochs")
	flag.Parse()

	ds := datasets.Load(*dataset)
	spec := core.SpecForDataset(*dataset)
	train := core.TrainConfig{Epochs: *epochs, LR: 0.01, WeightDecay: 5e-4, Seed: 1}

	fmt.Printf("threat model: honest-but-curious user, full control of the normal\n")
	fmt.Printf("world, wants the %d private edges of %s\n\n", ds.Graph.NumUndirectedEdges(), *dataset)

	fmt.Println("training M_org (unprotected GNN on the real adjacency)…")
	orig := core.TrainOriginal(ds, spec, train)
	fmt.Println("training M_gv backbone (GNNVault: KNN substitute graph only)…")
	bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), train)
	fmt.Println("training M_base (DNN on raw features — no graph at all)…")
	dnn := core.TrainBackbone(ds, spec, substitute.KindDNN, nil, train)

	sample := attack.SamplePairs(ds.Graph, 400, 7)
	fmt.Printf("\nattack sample: %d node pairs, balanced edges/non-edges\n", len(sample.Pairs))

	surfaces := []struct {
		name string
		auc  map[attack.Metric]float64
	}{
		{"M_org ", attack.Run(orig.Embeddings(ds.X), sample)},
		{"M_gv  ", attack.Run(bb.Embeddings(ds.X), sample)},
		{"M_base", attack.Run(dnn.Embeddings(ds.X), sample)},
	}

	fmt.Printf("\n%-10s", "metric")
	for _, s := range surfaces {
		fmt.Printf("  %s", s.name)
	}
	fmt.Println()
	for _, m := range attack.Metrics {
		fmt.Printf("%-10s", m)
		for _, s := range surfaces {
			fmt.Printf("  %.3f ", s.auc[m])
		}
		fmt.Println()
	}

	var worstOrg, worstGV, base float64
	for _, m := range attack.Metrics {
		if surfaces[0].auc[m] > worstOrg {
			worstOrg = surfaces[0].auc[m]
		}
		if surfaces[1].auc[m] > worstGV {
			worstGV = surfaces[1].auc[m]
		}
		if surfaces[2].auc[m] > base {
			base = surfaces[2].auc[m]
		}
	}
	fmt.Printf("\nworst-case leakage: unprotected %.3f → GNNVault %.3f (feature-only floor %.3f)\n",
		worstOrg, worstGV, base)
	fmt.Println("GNNVault's residual AUC comes from public features correlating with")
	fmt.Println("edges — information the attacker already had — not from the enclave.")
}
