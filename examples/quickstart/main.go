// Quickstart: the minimal GNNVault flow — load a dataset, run the
// partition-before-training pipeline, deploy into the simulated SGX
// enclave, and query it.
package main

import (
	"fmt"
	"log"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
)

func main() {
	// 1. A semi-supervised node-classification task. The graph is the
	//    private asset; node features are public.
	ds := datasets.Load("cora")
	fmt.Printf("dataset %s: %d nodes, %d private edges, %d classes\n",
		ds.Name, ds.Graph.N(), ds.Graph.NumUndirectedEdges(), ds.NumClasses)

	// 2. Partition-before-training: public backbone on a KNN substitute
	//    graph, private rectifier on the real adjacency.
	cfg := core.DefaultPipelineConfig(ds.Name)
	cfg.Train.Epochs = 120 // quick demo budget
	res := core.RunPipeline(ds, cfg)
	fmt.Printf("p_org %.1f%% | p_bb %.1f%% | p_rec %.1f%% (Δp %.1f%%)\n",
		res.POrg*100, res.PBB*100, res.PRec*100, res.DeltaP()*100)

	// 3. Deploy: backbone stays in the normal world, rectifier + COO graph
	//    are sealed into the enclave.
	vault, err := core.Deploy(res.Backbone, res.Rectifier, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Query. Only class labels leave the enclave.
	labels, bd, err := vault.Predict(ds.X)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for _, i := range ds.TestMask {
		if labels[i] == ds.Labels[i] {
			correct++
		}
	}
	fmt.Printf("deployed accuracy %.1f%% | latency %v (backbone %v + transfer %v + enclave %v)\n",
		100*float64(correct)/float64(len(ds.TestMask)),
		bd.Total(), bd.BackboneTime, bd.TransferTime, bd.EnclaveTime)
	fmt.Printf("peak enclave memory %.2f MB (EPC limit %d MB)\n",
		float64(bd.PeakEPCBytes)/(1<<20), vault.Enclave.EPCLimit()>>20)
}
