// Edgedeploy shows the TEE mechanics of a GNNVault deployment in detail:
// enclave measurement and attestation, sealing of the rectifier and the
// COO adjacency, EPC budgeting across rectifier designs, and the Fig. 6
// style inference-time breakdown against an unprotected CPU baseline.
package main

import (
	"fmt"
	"log"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/substitute"
)

func main() {
	ds := datasets.Load("pubmed")
	spec := core.SpecForDataset(ds.Name)
	train := core.TrainConfig{Epochs: 120, LR: 0.01, WeightDecay: 5e-4, Seed: 1}

	orig := core.TrainOriginal(ds, spec, train)
	_, cpuTime := core.UnprotectedInference(orig, ds.X)
	fmt.Printf("unprotected GNN on CPU: %v for %d nodes\n\n", cpuTime, ds.Graph.N())

	bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), train)

	fmt.Printf("%-10s %-10s %-12s %-12s %-12s %-10s %-12s\n",
		"design", "θ_rec", "transfer", "enclave", "total", "overhead", "peak EPC")
	for _, design := range core.Designs {
		rec := core.TrainRectifier(ds, bb, design, train)
		vault, err := core.Deploy(bb, rec, ds.Graph, enclave.DefaultCostModel())
		if err != nil {
			log.Fatalf("%s: %v", design, err)
		}
		if _, _, err := vault.Predict(ds.X); err != nil { // warm-up
			log.Fatal(err)
		}
		_, bd, err := vault.Predict(ds.X)
		if err != nil {
			log.Fatal(err)
		}
		overhead := 100 * (float64(bd.Total()) - float64(cpuTime)) / float64(cpuTime)
		fmt.Printf("%-10s %-10.4fM %-12v %-12v %-12v %+8.0f%%  %.2f MB\n",
			design, float64(rec.NumParams())/1e6,
			bd.TransferTime, bd.EnclaveTime, bd.Total(), overhead,
			float64(bd.PeakEPCBytes)/(1<<20))
	}

	// The memory argument of Sec. III-C: the rectifier fits, the full
	// model does not (at the paper's scale).
	rec := core.TrainRectifier(ds, bb, core.Series, train)
	recMem := core.EnclaveMemoryEstimate(rec, bb.BlockDims, ds.Graph.N())
	fullMem := core.FullModelMemoryEstimate(orig, ds.Paper.Nodes, ds.Paper.Features)
	fmt.Printf("\nenclave memory: series rectifier %.2f MB; hosting the full original\n"+
		"GNN at paper scale (%d nodes, %d features) would need ≥ %.0f MB — past the\n"+
		"%d MB EPC, hence the partition.\n",
		float64(recMem)/(1<<20), ds.Paper.Nodes, ds.Paper.Features,
		float64(fullMem)/(1<<20), enclave.DefaultCostModel().EPCBytes>>20)

	// Provisioning handshake: attest, then unseal.
	vault, err := core.Deploy(bb, rec, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	var nonce [32]byte
	copy(nonce[:], "alice-provisioning-nonce")
	report := vault.Enclave.Report(nonce)
	fmt.Printf("\nattestation: measurement %x… verifies: %v\n",
		report.Measurement[:8], vault.Enclave.VerifyReport(report))
	params, coo := vault.SealedArtifacts()
	fmt.Printf("sealed at rest: rectifier %d B + COO graph %d B (AES-256-GCM,\n"+
		"key derived from the measurement — a modified enclave cannot unseal)\n",
		len(params), len(coo))
}
