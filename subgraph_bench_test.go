package gnnvault_test

import (
	"fmt"
	"sync"
	"testing"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/graph"
	"gnnvault/internal/subgraph"
	"gnnvault/internal/substitute"
)

// The headline numbers of the subgraph serving engine: node-query latency
// stays roughly flat as the power-law graph grows (per-query cost is
// O(hops × fanout)), while full-graph inference on the same vaults scales
// linearly in N — and eventually stops fitting the EPC at all. Run with:
//
//	go test -run '^$' -bench 'SubgraphPredict|FullGraphNodeQuery' -benchmem .

// subgraphBenchSizes are the power-law graph sizes the latency sweep
// covers; the acceptance point is ≥100k nodes.
var subgraphBenchSizes = []int{50_000, 100_000, 200_000}

type subgraphBenchSetup struct {
	ds *datasets.Dataset
	v  *core.Vault
}

var (
	subgraphBenchMu    sync.Mutex
	subgraphBenchState = map[int]*subgraphBenchSetup{}
)

// subgraphBenchSpec is deliberately slimmer than M1: the point of the
// sweep is graph-size scaling, not channel-width arithmetic.
func subgraphBenchSpec() core.ModelSpec {
	return core.ModelSpec{Name: "bench-pl", BackboneHidden: []int{64, 32}, RectifierHidden: []int{32, 16}}
}

// subgraphBenchVault trains (once per size, cached) a series-design vault
// over an n-node preferential-attachment graph, with an independently
// generated power-law substitute standing in for the public graph. The
// enclave gets a widened EPC so the full-graph comparison leg can plan at
// every size — on a real 96 MB EPC the largest full-graph plans are
// simply unservable, which is the point of the engine.
func subgraphBenchVault(tb testing.TB, n int) *subgraphBenchSetup {
	subgraphBenchMu.Lock()
	defer subgraphBenchMu.Unlock()
	if st, ok := subgraphBenchState[n]; ok {
		return st
	}
	ds := datasets.GeneratePowerLaw(datasets.PowerLawConfig{Nodes: n, Seed: int64(n)})
	sub := graph.PreferentialAttachment(graph.PreferentialAttachmentConfig{
		Nodes: n, EdgesPerNode: 8, Seed: int64(n) + 999,
	})
	train := core.TrainConfig{Epochs: 2, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
	bb := core.TrainBackbone(ds, subgraphBenchSpec(), substitute.KindRandom, sub, train)
	rec := core.TrainRectifier(ds, bb, core.Series, train)
	cost := enclave.DefaultCostModel()
	cost.EPCBytes = 4 << 30
	v, err := core.Deploy(bb, rec, ds.Graph, cost)
	if err != nil {
		tb.Fatalf("deploy %d-node bench vault: %v", n, err)
	}
	st := &subgraphBenchSetup{ds: ds, v: v}
	subgraphBenchState[n] = st
	return st
}

// BenchmarkSubgraphPredict measures one node-level query through the
// subgraph engine (hops=2, fanout=10, 4-seed batches) across graph
// sizes. The per-op time should stay roughly flat as n grows, with zero
// allocations on the extraction+inference hot path; "subnodes" reports
// the extracted subgraph size actually served.
func BenchmarkSubgraphPredict(b *testing.B) {
	for _, n := range subgraphBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			st := subgraphBenchVault(b, n)
			ws, err := st.v.PlanSubgraph(8, subgraph.Config{Hops: 2, Fanout: 10, Seed: 1})
			if err != nil {
				b.Fatalf("PlanSubgraph: %v", err)
			}
			defer ws.Release()
			seeds := []int{n / 3, n/3 + 7, n / 2, n - 11}
			b.ReportAllocs()
			b.ResetTimer()
			extracted := 0
			for i := 0; i < b.N; i++ {
				if _, _, err := st.v.PredictNodesInto(st.ds.X, seeds, ws); err != nil {
					b.Fatalf("PredictNodesInto: %v", err)
				}
				extracted = ws.LastExtracted()
			}
			b.StopTimer()
			b.ReportMetric(float64(extracted), "subnodes")
			b.ReportMetric(float64(ws.EnclaveBytes()), "epcB")
		})
	}
}

// BenchmarkFullGraphNodeQuery is the baseline the engine replaces: the
// same node-level answers served by running the full-graph PredictInto
// pass and discarding everything but the requested labels. Linear in n.
func BenchmarkFullGraphNodeQuery(b *testing.B) {
	for _, n := range subgraphBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			st := subgraphBenchVault(b, n)
			ws, err := st.v.Plan(st.v.Nodes())
			if err != nil {
				b.Fatalf("Plan: %v", err)
			}
			defer ws.Release()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := st.v.PredictInto(st.ds.X, ws); err != nil {
					b.Fatalf("PredictInto: %v", err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(ws.EnclaveBytes()), "epcB")
		})
	}
}
