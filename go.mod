module gnnvault

go 1.24
