// Package gnnvault is a from-scratch Go reproduction of "Graph in the
// Vault: Protecting Edge GNN Inference with Trusted Execution Environment"
// (DAC 2025): a partition-before-training deployment where a public GCN
// backbone trained on a feature-derived substitute graph runs in the
// untrusted world, and a small private rectifier holding the real
// adjacency runs inside a (simulated) SGX enclave.
//
// The implementation lives under internal/: mat (dense kernels), graph
// (sparse adjacency + generators), nn (backprop layers + Adam), datasets
// (synthetic stand-ins for the paper's datasets), substitute (KNN / cosine
// / random substitute graphs), core (backbone, rectifiers, vault
// deployment), enclave (SGX software model), attack (link stealing), and
// experiments (one generator per paper table/figure).
//
// See README.md for a walkthrough and package map, and DESIGN.md for the
// system inventory and substitution rules. The root-level bench_test.go
// regenerates every paper table and figure via `go test -bench`, and
// serve_bench_test.go measures the steady-state serving path.
package gnnvault
