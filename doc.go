// Package gnnvault is a from-scratch Go reproduction of "Graph in the
// Vault: Protecting Edge GNN Inference with Trusted Execution Environment"
// (DAC 2025): a partition-before-training deployment where a public GCN
// backbone trained on a feature-derived substitute graph runs in the
// untrusted world, and a small private rectifier holding the real
// adjacency runs inside a (simulated) SGX enclave.
//
// The implementation lives under internal/: mat (dense kernels), graph
// (sparse adjacency + generators), nn (backprop layers + Adam), datasets
// (synthetic stand-ins for the paper's datasets), substitute (KNN / cosine
// / random substitute graphs), core (backbone, rectifiers, vault
// deployment and allocation-free inference plans), enclave (SGX software
// model), registry (EPC-aware scheduling of a multi-vault fleet on one
// enclave), serve (single-vault and fleet-routing batched serving),
// attack (link stealing), and experiments (one generator per paper
// table/figure).
//
// See README.md for a walkthrough, package map, and serving ops guide,
// and DESIGN.md for the system inventory, substitution rules, and the
// registry's eviction policy and EPC accounting invariants. The
// root-level bench_test.go regenerates every paper table and figure via
// `go test -bench`, serve_bench_test.go measures the steady-state serving
// path, and registry_bench_test.go sweeps the multi-vault fleet across
// the EPC cliff.
package gnnvault
