// Package gnnvault is a from-scratch Go reproduction of "Graph in the
// Vault: Protecting Edge GNN Inference with Trusted Execution Environment"
// (DAC 2025): a partition-before-training deployment where a public GCN
// backbone trained on a feature-derived substitute graph runs in the
// untrusted world, and a small private rectifier holding the real
// adjacency runs inside a (simulated) SGX enclave.
//
// The implementation lives under internal/: mat (dense kernels), graph
// (sparse adjacency + generators, including a power-law generator for
// serving-scale graphs), nn (backprop layers + Adam), datasets
// (synthetic stand-ins for the paper's datasets), substitute (KNN / cosine
// / random substitute graphs), subgraph (L-hop frontier expansion and
// induced-CSR extraction for node-level minibatch serving), exec (the
// tiled streaming executor: forward passes compiled to flat op programs,
// epilogue-fused, and run direct, row-tile-streamed, or tile-parallel
// under a fixed EPC budget), core
// (backbone, rectifiers, vault deployment and allocation-free inference
// plans — full-graph and subgraph, untiled or EPC-budgeted), enclave
// (SGX software model), registry (EPC-aware scheduling of a multi-vault
// fleet on one enclave), serve (single-vault and fleet-routing batched
// serving with node-query coalescing), attack (link stealing), and
// experiments (one generator per paper table/figure).
//
// See README.md for a walkthrough, package map, serving ops guide, and
// the node-level serving section, and DESIGN.md for the system
// inventory, substitution rules, the registry's eviction policy, and the
// EPC accounting invariants of both workspace kinds. The root-level
// bench_test.go regenerates every paper table and figure via
// `go test -bench`, serve_bench_test.go measures the steady-state serving
// path, registry_bench_test.go sweeps the multi-vault fleet across the
// EPC cliff, subgraph_bench_test.go sweeps node-query latency against
// full-graph inference on growing power-law graphs, and
// tiled_bench_test.go prices tile-streamed full-graph plans under a
// 64 MB EPC budget against the untiled baseline.
package gnnvault
