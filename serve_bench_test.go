package gnnvault_test

import (
	"fmt"
	"testing"

	"gnnvault/internal/core"
	"gnnvault/internal/serve"
)

// BenchmarkVaultPredictInto is BenchmarkVaultPredict over a planned
// workspace: the steady-state serving hot path. Compare B/op and allocs/op
// against BenchmarkVaultPredict to see what the execution-plan refactor
// buys.
func BenchmarkVaultPredictInto(b *testing.B) {
	for _, design := range core.Designs {
		b.Run(string(design), func(b *testing.B) {
			ds, vault := deployedVault(b, design)
			ws, err := vault.Plan(ds.X.Rows)
			if err != nil {
				b.Fatal(err)
			}
			defer ws.Release()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := vault.PredictInto(ds.X, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServe measures end-to-end serving throughput: concurrent
// clients pushing label queries through the batched worker pool, each
// worker reusing its own pre-planned workspace.
func BenchmarkServe(b *testing.B) {
	ds, vault := deployedVault(b, core.Parallel)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			srv, err := serve.New(vault, serve.Config{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := srv.Predict(ds.X); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
